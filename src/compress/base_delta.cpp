#include "compress/base_delta.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"

namespace fpraker {

namespace {

/**
 * Width needed for delta @p d with the most negative code reserved:
 * d must lie in [-2^(w-1)+1, 2^(w-1)-1], so w = bitWidth(|d|) + 1.
 */
int
deltaWidth(int d)
{
    int mag = d >= 0 ? d : -d;
    return bitWidth(static_cast<uint64_t>(mag)) + 1;
}

/** The reserved "zero value" codeword for width w. */
int
zeroMarker(int w)
{
    return -(1 << (w - 1));
}

/** First non-zero exponent of the group (0 when all values are zero). */
int
groupBase(const uint8_t *exponents, int n)
{
    for (int i = 0; i < n; ++i)
        if (exponents[i] != 0)
            return exponents[i];
    return 0;
}

/** Wraparound (mod 256) two's-complement delta. */
int
wrapDelta(int exponent, int base)
{
    return static_cast<int8_t>(
        static_cast<uint8_t>(exponent - base));
}

/** Simple MSB-first bit writer. */
class BitWriter
{
  public:
    void
    put(uint32_t value, int bits)
    {
        for (int i = bits - 1; i >= 0; --i) {
            if (bitPos_ == 0)
                bytes_.push_back(0);
            bytes_.back() |= static_cast<uint8_t>(((value >> i) & 1u)
                                                  << (7 - bitPos_));
            bitPos_ = (bitPos_ + 1) % 8;
        }
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
    int bitPos_ = 0;
};

/** Matching MSB-first bit reader. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes)
        : bytes_(bytes)
    {}

    uint32_t
    get(int bits)
    {
        uint32_t v = 0;
        for (int i = 0; i < bits; ++i) {
            panic_if(byte_ >= bytes_.size(), "bitstream underrun");
            int bit = (bytes_[byte_] >> (7 - bitPos_)) & 1;
            v = (v << 1) | static_cast<uint32_t>(bit);
            if (++bitPos_ == 8) {
                bitPos_ = 0;
                ++byte_;
            }
        }
        return v;
    }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t byte_ = 0;
    int bitPos_ = 0;
};

} // namespace

BaseDeltaCodec::BaseDeltaCodec(int group_size)
    : groupSize_(group_size)
{
    panic_if(groupSize_ < 2, "group size %d too small", groupSize_);
}

int
BaseDeltaCodec::deltaBitsForGroup(const uint8_t *exponents, int n) const
{
    panic_if(n < 1, "empty group");
    int base = groupBase(exponents, n);
    int width = 1; // the 3-bit metadata field encodes widths 1..8
    for (int i = 0; i < n; ++i) {
        if (exponents[i] == 0)
            continue; // zero values take the reserved codeword
        width = std::max(width, deltaWidth(wrapDelta(exponents[i], base)));
    }
    panic_if(width > 8, "delta width %d out of range", width);
    return width;
}

BdcResult
BaseDeltaCodec::analyze(const std::vector<BFloat16> &values) const
{
    BdcResult r;
    r.values = values.size();
    for (size_t g = 0; g < values.size();
         g += static_cast<size_t>(groupSize_)) {
        int n = static_cast<int>(
            std::min<size_t>(groupSize_, values.size() - g));
        uint8_t exps[256];
        for (int i = 0; i < n; ++i)
            exps[i] = static_cast<uint8_t>(
                values[g + static_cast<size_t>(i)].biasedExponent());
        int width = deltaBitsForGroup(exps, n);

        r.groups += 1;
        r.exponentBitsRaw += static_cast<uint64_t>(n) * 8;
        // Header: 8-bit base + 3-bit width + 1-bit "first value is
        // zero" flag; then one delta per remaining value.
        uint64_t comp = 8 + 3 + 1 + static_cast<uint64_t>(n - 1) * width;
        r.exponentBitsCompressed += comp;
        r.totalBitsRaw += static_cast<uint64_t>(n) * 16;
        // Sign + mantissa bytes travel verbatim.
        r.totalBitsCompressed += comp + static_cast<uint64_t>(n) * 8;
    }
    return r;
}

std::vector<uint8_t>
BaseDeltaCodec::encode(const std::vector<BFloat16> &values) const
{
    BitWriter w;
    for (size_t g = 0; g < values.size();
         g += static_cast<size_t>(groupSize_)) {
        int n = static_cast<int>(
            std::min<size_t>(groupSize_, values.size() - g));
        uint8_t exps[256];
        for (int i = 0; i < n; ++i)
            exps[i] = static_cast<uint8_t>(
                values[g + static_cast<size_t>(i)].biasedExponent());
        int base = groupBase(exps, n);
        int width = deltaBitsForGroup(exps, n);

        w.put(static_cast<uint32_t>(base), 8);
        w.put(static_cast<uint32_t>(width - 1), 3);
        // The group's first value is represented by the base itself,
        // with one header bit marking the "first value is zero, base
        // comes from a later value" case; every other value stores a
        // delta, using the reserved codeword for zeros.
        w.put(exps[0] == 0 && base != 0 ? 1u : 0u, 1);
        for (int i = 1; i < n; ++i) {
            int delta = exps[i] == 0 ? zeroMarker(width)
                                     : wrapDelta(exps[i], base);
            w.put(static_cast<uint32_t>(delta) & maskBits(width), width);
        }
        for (int i = 0; i < n; ++i) {
            const BFloat16 &v = values[g + static_cast<size_t>(i)];
            uint32_t sm = (v.isNegative() ? 0x80u : 0u) |
                          static_cast<uint32_t>(v.mantissa());
            w.put(sm, 8);
        }
    }
    return w.take();
}

std::vector<BFloat16>
BaseDeltaCodec::decode(const std::vector<uint8_t> &stream,
                       size_t count) const
{
    BitReader r(stream);
    std::vector<BFloat16> out;
    out.reserve(count);
    while (out.size() < count) {
        int n = static_cast<int>(
            std::min<size_t>(groupSize_, count - out.size()));
        int base = static_cast<int>(r.get(8));
        int width = static_cast<int>(r.get(3)) + 1;
        int exps[256];
        exps[0] = r.get(1) ? 0 : base;
        for (int i = 1; i < n; ++i) {
            uint32_t raw = r.get(width);
            int delta = static_cast<int>(raw);
            if (raw & (1u << (width - 1)))
                delta -= 1 << width;
            exps[i] = delta == zeroMarker(width)
                          ? 0
                          : static_cast<uint8_t>(base + delta);
        }
        for (int i = 0; i < n; ++i) {
            uint32_t sm = r.get(8);
            out.push_back(BFloat16::fromFields(
                (sm & 0x80u) != 0, exps[i], static_cast<int>(sm & 0x7fu)));
        }
    }
    return out;
}

} // namespace fpraker
