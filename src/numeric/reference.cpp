#include "numeric/reference.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace fpraker {

double
dotDouble(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += static_cast<double>(a[i].toFloat()) *
               static_cast<double>(b[i].toFloat());
    return sum;
}

float
dotFloat(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    float sum = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        sum = std::fma(a[i].toFloat(), b[i].toFloat(), sum);
    return sum;
}

float
dotChunked(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b,
           const AccumulatorConfig &cfg)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    ChunkedAccumulator acc(cfg);
    for (size_t i = 0; i < a.size(); ++i)
        acc.addProduct(a[i], b[i]);
    return acc.total();
}

double
relError(double x, double ref, double floor)
{
    double denom = std::fabs(ref);
    if (denom < floor)
        denom = floor;
    return std::fabs(x - ref) / denom;
}

double
accumulationTolerance(const AccumulatorConfig &cfg, size_t steps)
{
    // One rounding per step at 2^-fracBits relative precision, plus the
    // final bfloat16/FP32 readout rounding.
    double step_ulp = std::ldexp(1.0, -cfg.fracBits);
    return step_ulp * (static_cast<double>(steps) + 4.0);
}

} // namespace fpraker
