/**
 * @file
 * BFloat16 value type.
 *
 * bfloat16 (brain floating point) is the datatype FPRaker operates on:
 * 1 sign bit, 8 exponent bits (bias 127), 7 explicit mantissa bits. The
 * paper assumes hardware without denormal support (citing Henry et al.),
 * so conversions flush denormals to zero. Conversion from float uses
 * round-to-nearest-even.
 */

#ifndef FPRAKER_NUMERIC_BFLOAT16_H
#define FPRAKER_NUMERIC_BFLOAT16_H

#include <cstdint>

namespace fpraker {

/**
 * A bfloat16 value stored in IEEE-like bit layout (s:1 e:8 m:7).
 *
 * The class is a thin, trivially copyable wrapper over the 16-bit pattern
 * with helpers that expose the fields the FPRaker PE consumes: the biased
 * exponent and the 8-bit significand with the hidden leading one made
 * explicit.
 */
class BFloat16
{
  public:
    static constexpr int kExpBits = 8;
    static constexpr int kManBits = 7;
    static constexpr int kBias = 127;
    /** Significand width including the hidden bit. */
    static constexpr int kSigBits = kManBits + 1;

    /** Default: +0. */
    constexpr BFloat16() : bits_(0) {}

    /** Round a float to bfloat16 (RNE, denormals flushed to zero). */
    static BFloat16 fromFloat(float f);

    /** Reinterpret a raw 16-bit pattern as bfloat16. */
    static constexpr BFloat16
    fromBits(uint16_t bits)
    {
        BFloat16 v;
        v.bits_ = bits;
        return v;
    }

    /** Construct from sign/biased-exponent/mantissa fields. */
    static constexpr BFloat16
    fromFields(bool negative, int biased_exp, int mantissa)
    {
        return fromBits(static_cast<uint16_t>(
            (negative ? 0x8000u : 0u) |
            (static_cast<unsigned>(biased_exp & 0xff) << kManBits) |
            (static_cast<unsigned>(mantissa) & 0x7fu)));
    }

    /** Widen to float (always exact). */
    float toFloat() const;

    /** Raw bit pattern. */
    constexpr uint16_t bits() const { return bits_; }

    /** Sign bit: true when negative. */
    constexpr bool isNegative() const { return (bits_ & 0x8000u) != 0; }

    /** Biased 8-bit exponent field. */
    constexpr int biasedExponent() const { return (bits_ >> kManBits) & 0xff; }

    /** Unbiased exponent (only meaningful for finite non-zero values). */
    constexpr int unbiasedExponent() const { return biasedExponent() - kBias; }

    /** The 7 explicit mantissa bits. */
    constexpr int mantissa() const { return bits_ & 0x7fu; }

    /**
     * The 8-bit significand with the hidden one made explicit
     * (range [128, 255] for normal values, 0 for zero).
     */
    constexpr int
    significand() const
    {
        return isZero() ? 0 : (0x80 | mantissa());
    }

    /** True for +/-0 (denormals never occur in this type). */
    constexpr bool isZero() const { return (bits_ & 0x7fffu) == 0; }

    /** True for +/-inf. */
    constexpr bool
    isInf() const
    {
        return biasedExponent() == 0xff && mantissa() == 0;
    }

    /** True for NaN. */
    constexpr bool
    isNaN() const
    {
        return biasedExponent() == 0xff && mantissa() != 0;
    }

    /** True for a finite value (zero or normal). */
    constexpr bool isFinite() const { return biasedExponent() != 0xff; }

    /** Negated value. */
    constexpr BFloat16
    operator-() const
    {
        return fromBits(static_cast<uint16_t>(bits_ ^ 0x8000u));
    }

    /** Bit-pattern equality (note: +0 != -0 under this comparison). */
    constexpr bool
    operator==(const BFloat16 &other) const
    {
        return bits_ == other.bits_;
    }
    constexpr bool
    operator!=(const BFloat16 &other) const
    {
        return bits_ != other.bits_;
    }

  private:
    uint16_t bits_;
};

/** Shorthand literal-style constructor used pervasively in tests. */
inline BFloat16
bf16(float f)
{
    return BFloat16::fromFloat(f);
}

} // namespace fpraker

#endif // FPRAKER_NUMERIC_BFLOAT16_H
