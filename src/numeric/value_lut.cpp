#include "numeric/value_lut.h"

namespace fpraker {

ValueLut::ValueLut(TermEncoding enc)
    : encoding_(enc)
{
    const TermLut &lut = TermLut::of(enc);
    for (uint32_t bits = 0; bits < 65536; ++bits) {
        const BFloat16 v = BFloat16::fromBits(static_cast<uint16_t>(bits));
        Entry &e = entries_[bits];
        // Same accessors the scalar paths used, so the table is the
        // scalar computation by construction (non-finite patterns keep
        // their field split; the consumers panic on the flag instead).
        e.stream = &lut.stream(v.significand());
        e.unbiasedExp = static_cast<int16_t>(v.unbiasedExponent());
        e.biasedExp = static_cast<int16_t>(v.biasedExponent());
        e.sig = static_cast<uint8_t>(v.significand());
        e.nterms = static_cast<uint8_t>(e.stream->size());
        e.shift0 = e.nterms ? (*e.stream)[0].shift : int8_t(0);
        e.flags = static_cast<uint8_t>(
            (v.isNegative() ? kNegative : 0) | (v.isZero() ? kZero : 0) |
            (v.isFinite() ? kFinite : 0));
    }
}

const ValueLut &
ValueLut::of(TermEncoding enc)
{
    static const ValueLut canonical(TermEncoding::Canonical);
    static const ValueLut raw(TermEncoding::RawBits);
    return enc == TermEncoding::RawBits ? raw : canonical;
}

} // namespace fpraker
