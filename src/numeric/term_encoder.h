/**
 * @file
 * Signed power-of-two ("term") encoding of bfloat16 significands.
 *
 * FPRaker processes the A operand of each MAC as a stream of terms: signed
 * powers of two produced by canonically recoding the 8-bit significand
 * (hidden one included). Canonical encoding — the non-adjacent form (NAF),
 * a variant of Booth encoding — guarantees no two adjacent non-zero digits
 * and the minimal number of non-zero digits, e.g.
 * 1.1110000 -> {+2^+1, -2^-4}.
 *
 * A term's position is expressed as a right-shift distance `t` from the
 * 2^0 (hidden-one) position, so the term's value is +/-2^-t with
 * t in [-1, +7] for an 8-bit significand. Terms are emitted most
 * significant first, which is what allows the PE to cut off a lane as soon
 * as one term falls below the accumulator's precision (all later terms are
 * strictly smaller).
 */

#ifndef FPRAKER_NUMERIC_TERM_ENCODER_H
#define FPRAKER_NUMERIC_TERM_ENCODER_H

#include <cstdint>

#include "numeric/bfloat16.h"

namespace fpraker {

/** One signed power-of-two term: value = (neg ? -1 : +1) * 2^-shift. */
struct Term
{
    int8_t shift; //!< Right-shift distance from the 2^0 position.
    bool neg;     //!< True when the term is subtractive.

    bool
    operator==(const Term &other) const
    {
        return shift == other.shift && neg == other.neg;
    }
};

/** Choice of significand recoding. */
enum class TermEncoding
{
    Canonical, //!< Non-adjacent form (Booth variant); the paper's default.
    RawBits,   //!< Plain non-zero bits, all positive (ablation baseline).
};

/**
 * A fixed-capacity, MSB-first term stream for one significand.
 *
 * Capacity 8 covers both encodings: raw bits produce at most 8 terms and
 * the NAF of an 8-bit significand produces at most 5.
 */
class TermStream
{
  public:
    static constexpr int kMaxTerms = 8;

    TermStream() = default;

    /** Number of terms in the stream. */
    int size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Term @p i (0 = most significant). */
    const Term &
    operator[](int i) const
    {
        return terms_[i];
    }

    /** Append a term (caller keeps MSB-first ordering). */
    void
    push(Term t)
    {
        terms_[count_++] = t;
    }

    /**
     * Reconstruct the encoded significand scaled by 2^7 (i.e. the integer
     * significand value the terms represent). Used by tests.
     */
    int reconstructScaled() const;

  private:
    Term terms_[kMaxTerms] = {};
    int count_ = 0;
};

/**
 * Encoder producing term streams from significands.
 *
 * Stateless; the PE model owns one per tile column (the hardware shares
 * the power-of-two encoders across the PEs of a column).
 */
class TermEncoder
{
  public:
    explicit TermEncoder(TermEncoding enc = TermEncoding::Canonical)
        : encoding_(enc)
    {}

    TermEncoding encoding() const { return encoding_; }

    /**
     * Encode an 8-bit significand (0 or [128, 255]) into MSB-first terms.
     */
    TermStream encodeSignificand(int sig8) const;

    /** Encode the significand of a bfloat16 value (zero -> empty). */
    TermStream
    encode(BFloat16 v) const
    {
        return encodeSignificand(v.significand());
    }

    /** Number of terms the encoding would produce, without materializing. */
    int countTerms(int sig8) const;

  private:
    TermEncoding encoding_;
};

/**
 * Term-slot accounting used for the paper's "term sparsity" metric
 * (Fig. 1b): every value contributes kTermSlots potential term positions
 * (the 8 significand bit positions); term sparsity is the fraction of
 * those slots left empty after canonical encoding.
 */
constexpr int kTermSlots = 8;

} // namespace fpraker

#endif // FPRAKER_NUMERIC_TERM_ENCODER_H
