#include "numeric/term_encoder.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace fpraker {

namespace {

/**
 * Compute the non-adjacent form of @p n (0 or [128, 255]) and invoke
 * @p emit(position, negative) from the least significant digit upward.
 * Positions are bit indices relative to 2^-7 (so the hidden one sits at
 * position 7 and a carry digit at position 8).
 */
template <typename EmitFn>
void
nafDigits(int n, EmitFn emit)
{
    int pos = 0;
    while (n != 0) {
        if (n & 1) {
            // Digit is +1 when n mod 4 == 1, -1 when n mod 4 == 3, which
            // guarantees the next digit is zero (non-adjacency).
            int digit = 2 - (n & 3);
            emit(pos, digit < 0);
            n -= digit;
        }
        n >>= 1;
        ++pos;
    }
}

} // namespace

int
TermStream::reconstructScaled() const
{
    int v = 0;
    for (int i = 0; i < count_; ++i) {
        int weight = 1 << (7 - terms_[i].shift);
        v += terms_[i].neg ? -weight : weight;
    }
    return v;
}

TermStream
TermEncoder::encodeSignificand(int sig8) const
{
    panic_if(sig8 != 0 && (sig8 < 0x80 || sig8 > 0xff),
             "significand %d is neither zero nor normalized", sig8);

    TermStream out;
    if (sig8 == 0)
        return out;

    if (encoding_ == TermEncoding::RawBits) {
        for (int bit = 7; bit >= 0; --bit) {
            if (sig8 & (1 << bit))
                out.push({static_cast<int8_t>(7 - bit), false});
        }
        return out;
    }

    // Canonical: collect NAF digits LSB-first, then reverse into the
    // MSB-first stream order the PE consumes.
    Term lsb_first[TermStream::kMaxTerms];
    int n = 0;
    nafDigits(sig8, [&](int pos, bool neg) {
        panic_if(n >= TermStream::kMaxTerms, "NAF overflow for sig %d",
                 sig8);
        lsb_first[n++] = {static_cast<int8_t>(7 - pos), neg};
    });
    for (int i = n - 1; i >= 0; --i)
        out.push(lsb_first[i]);
    return out;
}

int
TermEncoder::countTerms(int sig8) const
{
    if (sig8 == 0)
        return 0;
    if (encoding_ == TermEncoding::RawBits)
        return popcount(static_cast<uint64_t>(sig8));
    int n = 0;
    nafDigits(sig8, [&](int, bool) { ++n; });
    return n;
}

} // namespace fpraker
