/**
 * @file
 * Precomputed term-stream lookup tables.
 *
 * The hardware shares one set of power-of-two encoders per tile column,
 * but the simulator used to re-run the NAF recoding of every serial
 * operand on every set. A significand is only 8 bits, so the full
 * encoding domain is 256 entries per encoding: TermLut materializes all
 * of them once (streams and term counts) and every hot path — the PE
 * column's beginSet, the tensor statistics used by the figure harnesses
 * — reads the shared, immutable tables instead of re-encoding.
 *
 * Lanes hold a pointer into the table rather than a copy, so beginning
 * a set costs one table index per lane and no memory traffic.
 */

#ifndef FPRAKER_NUMERIC_TERM_LUT_H
#define FPRAKER_NUMERIC_TERM_LUT_H

#include <cstdint>

#include "numeric/slab_ops.h"
#include "numeric/term_encoder.h"

namespace fpraker {

/** Immutable per-encoding table of all 256 significand encodings. */
class TermLut
{
  public:
    /**
     * Shared table for @p enc, built on first use (thread-safe) and
     * immutable afterwards, so concurrent simulation workers can read
     * it without synchronization.
     */
    static const TermLut &of(TermEncoding enc);

    /** Term stream of an 8-bit significand (0 or [128, 255]). */
    const TermStream &
    stream(int sig8) const
    {
        return streams_[sig8 & 0xff];
    }

    /** Term stream of a bfloat16 value's significand (zero -> empty). */
    const TermStream &
    stream(BFloat16 v) const
    {
        return streams_[v.significand()];
    }

    /** Number of terms the encoding produces for @p sig8. */
    int
    countTerms(int sig8) const
    {
        return counts_[sig8 & 0xff];
    }

    /**
     * The full 256-entry term-count table (counts_[0] == 0), for the
     * slab-grain SIMD classifiers in numeric/slab_ops.h.
     */
    const uint8_t *countsTable() const { return counts_; }

    /**
     * 16-entry in-register counterpart of countsTable() for the
     * pshufb tiers in slab_ops: a nibble popcount table plus the
     * encoding's fold rule (canonical NAF counts are popcount(x^3x),
     * RawBits counts are popcount(x)). Parity with countsTable() over
     * the reachable significand domain {0} u [128, 255] is pinned by
     * tests/test_simd_tiers.cpp.
     */
    const slab::NibbleCountLut &nibbleLut() const { return nibble_; }

    TermEncoding encoding() const { return encoding_; }

  private:
    explicit TermLut(TermEncoding enc);

    TermEncoding encoding_;
    TermStream streams_[256];
    uint8_t counts_[256] = {};
    slab::NibbleCountLut nibble_ = {};
};

} // namespace fpraker

#endif // FPRAKER_NUMERIC_TERM_LUT_H
