/**
 * @file
 * Batched (slab-grain) operand kernels with runtime SIMD dispatch.
 *
 * The simulator's data-supply path — synthesizing operand values and
 * classifying them through the term LUT — used to run value-at-a-time
 * scalar loops. These helpers operate on whole slabs instead: a flat
 * run of bfloat16 values (one phase burst's A or B operands, a whole
 * benchmark workload) processed 8/16 values per iteration.
 *
 * Dispatch policy: every entry point has a portable scalar body that
 * defines the semantics; on x86-64 an SSE2 body (always present — SSE2
 * is part of the base ISA) handles the main loop, and an AVX2 body is
 * selected at runtime via __builtin_cpu_supports when the host has it.
 * All bodies are integer-exact over the same bit patterns, so the
 * selected level can never change a result — only wall-clock. Fuzz
 * coverage in tests/test_fastpath.cpp pins every available level
 * against the scalar body.
 */

#ifndef FPRAKER_NUMERIC_SLAB_OPS_H
#define FPRAKER_NUMERIC_SLAB_OPS_H

#include <cstddef>
#include <cstdint>

#include "numeric/bfloat16.h"

namespace fpraker {
namespace slab {

/** SIMD level the dispatched entry points run at: "avx2", "sse2", or
 *  "scalar" (non-x86 builds). */
const char *simdLevel();

/**
 * Count zero values and total encoded terms over a value slab.
 * @p counts is a 256-entry per-significand term-count table (use
 * TermLut::countsTable()); counts[0] must be 0 so zero values add no
 * terms. Adds to *zeros / *terms.
 */
void countTerms(const BFloat16 *values, size_t n,
                const uint8_t counts[256], uint64_t *zeros,
                uint64_t *terms);

/**
 * Assemble bfloat16 bit patterns from SoA field planes:
 * out[i] = neg[i]<<15 | (biased_exp[i] & 0xff)<<7 | (man[i] & 0x7f).
 * A zero value is represented as all-zero planes. @p neg entries are
 * 0 or 1.
 */
void packBf16(const int16_t *biased_exp, const uint8_t *man,
              const uint8_t *neg, size_t n, BFloat16 *out);

// Fixed (non-dispatched) reference bodies, exposed for differential
// tests and the perf_regression generation benchmark.
void countTermsScalar(const BFloat16 *values, size_t n,
                      const uint8_t counts[256], uint64_t *zeros,
                      uint64_t *terms);
void packBf16Scalar(const int16_t *biased_exp, const uint8_t *man,
                    const uint8_t *neg, size_t n, BFloat16 *out);

} // namespace slab
} // namespace fpraker

#endif // FPRAKER_NUMERIC_SLAB_OPS_H
