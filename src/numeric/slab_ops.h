/**
 * @file
 * Batched (slab-grain) operand kernels with runtime SIMD dispatch.
 *
 * The simulator's data-supply path — synthesizing operand values and
 * classifying them through the term LUT — used to run value-at-a-time
 * scalar loops. These helpers operate on whole slabs instead: a flat
 * run of bfloat16 values (one phase burst's A or B operands, a whole
 * benchmark workload) processed 8..64 values per iteration.
 *
 * Dispatch policy: every entry point has a portable scalar body that
 * defines the semantics. On x86-64 the dispatcher picks the widest
 * tier the host supports out of SSE2 (always present — part of the
 * base ISA), AVX2, and AVX-512 (F+BW), probed once at startup via
 * __builtin_cpu_supports. The `FPRAKER_SIMD` environment variable
 * pins the tier instead (`scalar`, `sse2`, `avx2`, `avx512`); an
 * unknown value, or a tier the build or host cannot run, is a fatal
 * error — tests and CI rely on a forced tier never degrading
 * silently. All bodies are integer-exact over the same bit patterns,
 * so the selected tier can never change a result — only wall-clock.
 * Fuzz coverage in tests/test_simd_tiers.cpp pins every compiled tier
 * against the scalar bodies; tests/test_fastpath.cpp pins the
 * dispatched entry points.
 *
 * Counting design note: the AVX2/AVX-512 tiers count terms with a
 * 16-entry in-register nibble table (pshufb) instead of walking the
 * 256-entry memory LUT. For the canonical (NAF) encoding this uses
 * the identity  termCount(x) == popcount(x ^ 3x)  — the xor-fold
 * turns the recoding into a plain population count, which the nibble
 * LUT then evaluates 32/64 significands at a time (see
 * TermLut::nibbleLut() and docs/PERFORMANCE.md). SSE2 predates
 * pshufb (SSSE3), so that tier keeps the memory-LUT walk.
 */

#ifndef FPRAKER_NUMERIC_SLAB_OPS_H
#define FPRAKER_NUMERIC_SLAB_OPS_H

#include <cstddef>
#include <cstdint>

#include "numeric/bfloat16.h"

namespace fpraker {
namespace slab {

/**
 * 16-entry in-register term-count table (see TermLut::nibbleLut()).
 * `pop4[v]` is the population count of the 4-bit value @p v. When
 * @p nafFold is set the significand is first folded as x ^ (3x)
 * (computed in 16-bit width — 3x overflows 8 bits), which maps the
 * canonical NAF digit count onto a plain popcount; RawBits counts
 * set bits directly.
 */
struct NibbleCountLut
{
    uint8_t pop4[16];
    bool nafFold;
};

/** Runtime dispatch tiers, narrowest to widest. */
enum class SimdTier
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
    Avx512 = 3,
};

inline constexpr int kNumSimdTiers = 4;

/** Lower-case tier name: "scalar", "sse2", "avx2", "avx512". */
const char *tierName(SimdTier tier);

/** True when this build contains a body for @p tier. */
bool tierCompiled(SimdTier tier);

/** True when this build AND the host CPU can execute @p tier. */
bool tierSupported(SimdTier tier);

/**
 * Parse a FPRAKER_SIMD value ("scalar"/"sse2"/"avx2"/"avx512").
 * Returns false on an unknown spelling (the dispatcher treats that as
 * fatal; tests use this to probe without dying).
 */
bool parseSimdTier(const char *text, SimdTier *out);

/**
 * The tier the dispatched entry points run at: the widest supported
 * tier, or the tier forced via FPRAKER_SIMD. Resolved once on first
 * use; an unknown FPRAKER_SIMD value or a forced tier the host can't
 * execute is a fatal error.
 */
SimdTier activeTier();

/** Name of activeTier(): "avx512", "avx2", "sse2", or "scalar". */
const char *simdLevel();

/**
 * Count zero values and total encoded terms over a value slab.
 * @p counts is a 256-entry per-significand term-count table and
 * @p nib the matching 16-entry nibble table (use
 * TermLut::countsTable() / TermLut::nibbleLut()); counts[0] must be 0
 * so zero values add no terms. Adds to *zeros / *terms.
 */
void countTerms(const BFloat16 *values, size_t n,
                const uint8_t counts[256], const NibbleCountLut &nib,
                uint64_t *zeros, uint64_t *terms);

/**
 * Assemble bfloat16 bit patterns from SoA field planes:
 * out[i] = neg[i]<<15 | (biased_exp[i] & 0xff)<<7 | (man[i] & 0x7f).
 * A zero value is represented as all-zero planes. @p neg entries are
 * 0 or 1.
 */
void packBf16(const int16_t *biased_exp, const uint8_t *man,
              const uint8_t *neg, size_t n, BFloat16 *out);

// Fixed (non-dispatched) reference bodies, exposed for differential
// tests and the perf_regression generation benchmark.
void countTermsScalar(const BFloat16 *values, size_t n,
                      const uint8_t counts[256], uint64_t *zeros,
                      uint64_t *terms);
void packBf16Scalar(const int16_t *biased_exp, const uint8_t *man,
                    const uint8_t *neg, size_t n, BFloat16 *out);

// Per-tier entry points for the differential tier fuzz
// (tests/test_simd_tiers.cpp). Callers must check tierSupported()
// first; an unsupported tier is a panic, not a fallback.
void countTermsAt(SimdTier tier, const BFloat16 *values, size_t n,
                  const uint8_t counts[256], const NibbleCountLut &nib,
                  uint64_t *zeros, uint64_t *terms);
void packBf16At(SimdTier tier, const int16_t *biased_exp,
                const uint8_t *man, const uint8_t *neg, size_t n,
                BFloat16 *out);

} // namespace slab
} // namespace fpraker

#endif // FPRAKER_NUMERIC_SLAB_OPS_H
