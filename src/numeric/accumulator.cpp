#include "numeric/accumulator.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/logging.h"

namespace fpraker {

ExtendedAccumulator::ExtendedAccumulator(AccumulatorConfig cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.fracBits < 1 || cfg_.fracBits > 40,
             "unsupported accumulator fraction width %d", cfg_.fracBits);
    reset();
}

void
ExtendedAccumulator::reset()
{
    neg_ = false;
    exp_ = kMinExp;
    sig_ = 0;
}




void
ExtendedAccumulator::addProduct(BFloat16 a, BFloat16 b)
{
    panic_if(!a.isFinite() || !b.isFinite(),
             "non-finite operand in accumulator (a=%04x b=%04x)", a.bits(),
             b.bits());
    if (a.isZero() || b.isZero())
        return;
    uint64_t prod = static_cast<uint64_t>(a.significand()) *
                    static_cast<uint64_t>(b.significand());
    // significands are P/2^7 each, so the product's LSB weighs 2^-14.
    int lsb_exp = a.unbiasedExponent() + b.unbiasedExponent() - 14;
    addValue(a.isNegative() != b.isNegative(), lsb_exp, prod);
}

BFloat16
ExtendedAccumulator::readBFloat16() const
{
    if (sig_ == 0)
        return BFloat16::fromBits(neg_ ? 0x8000 : 0x0000);

    // Round the significand from fracBits down to 7 fractional bits.
    int e = exp_;
    uint64_t kept = sig_;
    int drop = cfg_.fracBits - BFloat16::kManBits;
    if (drop > 0) {
        uint64_t low = sig_ & maskBits(drop);
        kept = sig_ >> drop;
        uint64_t half = uint64_t{1} << (drop - 1);
        if (low > half || (low == half && (kept & 1)))
            kept += 1;
        if (kept >> (BFloat16::kManBits + 1)) {
            kept >>= 1;
            ++e;
        }
    } else {
        kept = sig_ << (-drop);
    }

    int biased = e + BFloat16::kBias;
    if (biased >= 0xff) {
        // Overflow to infinity.
        return BFloat16::fromBits(neg_ ? 0xff80 : 0x7f80);
    }
    if (biased <= 0) {
        // Denormal range flushes to zero.
        return BFloat16::fromBits(neg_ ? 0x8000 : 0x0000);
    }
    return BFloat16::fromFields(neg_, biased,
                                static_cast<int>(kept) & 0x7f);
}

double
ExtendedAccumulator::readDouble() const
{
    if (sig_ == 0)
        return 0.0;
    double v = std::ldexp(static_cast<double>(sig_), exp_ - cfg_.fracBits);
    return neg_ ? -v : v;
}

ChunkedAccumulator::ChunkedAccumulator(AccumulatorConfig cfg)
    : cfg_(cfg), acc_(cfg), running_(0.0f), macsInChunk_(0)
{
    panic_if(cfg_.chunkSize < 1, "chunk size must be positive");
}

void
ChunkedAccumulator::reset()
{
    acc_.reset();
    running_ = 0.0f;
    macsInChunk_ = 0;
}

void
ChunkedAccumulator::addProduct(BFloat16 a, BFloat16 b)
{
    acc_.addProduct(a, b);
    tickMacs(1);
}


void
ChunkedAccumulator::flushChunk()
{
    // Inter-chunk accumulation happens in FP32 arithmetic (Sakr et al.).
    running_ += static_cast<float>(acc_.readDouble());
    acc_.reset();
    macsInChunk_ = 0;
}

float
ChunkedAccumulator::total() const
{
    return running_ + static_cast<float>(acc_.readDouble());
}

} // namespace fpraker
