#include "numeric/accumulator.h"

#include <cmath>

#include "common/bitutil.h"
#include "common/logging.h"

namespace fpraker {

namespace {

/** Most-significant set bit of a 128-bit magnitude (-1 for zero). */
int
msb128(unsigned __int128 v)
{
    uint64_t hi = static_cast<uint64_t>(v >> 64);
    if (hi)
        return 64 + msbPos(hi);
    uint64_t lo = static_cast<uint64_t>(v);
    return msbPos(lo);
}

} // namespace

ExtendedAccumulator::ExtendedAccumulator(AccumulatorConfig cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.fracBits < 1 || cfg_.fracBits > 40,
             "unsupported accumulator fraction width %d", cfg_.fracBits);
    reset();
}

void
ExtendedAccumulator::reset()
{
    neg_ = false;
    exp_ = kMinExp;
    sig_ = 0;
}

void
ExtendedAccumulator::alignTo(int e)
{
    if (e <= exp_)
        return;
    if (sig_ == 0) {
        exp_ = e;
        return;
    }
    // Quantize to the 2^(e - fracBits) grid: the stored value is
    // sig_ * 2^(exp_ - fracBits); its new LSB weight is 2^(e - fracBits),
    // so drop (e - exp_) low bits with round-to-nearest-even.
    int drop = e - exp_;
    if (drop > cfg_.fracBits + 1) {
        // Entire value falls below the new window: rounds to zero
        // (the leading bit sits below the half-ULP boundary).
        reset();
        exp_ = e;
        return;
    }
    uint64_t kept = sig_ >> drop;
    bool round = (sig_ >> (drop - 1)) & 1;
    bool sticky = (sig_ & maskBits(drop - 1)) != 0;
    if (round && (sticky || (kept & 1)))
        kept += 1;
    if (kept == 0) {
        reset();
        exp_ = e;
        return;
    }
    // Re-normalize the quantized value (exact: no bits below its LSB).
    int p = msbPos(kept);
    exp_ = e - (cfg_.fracBits - p);
    sig_ = kept << (cfg_.fracBits - p);
}

void
ExtendedAccumulator::normalizeAndRound(unsigned __int128 mag, int lsb_exp,
                                       bool sticky, bool neg)
{
    if (mag == 0) {
        // An exact cancellation (or a pure-sticky remnant, which RNE
        // truncates) leaves the register at zero. Keep the exponent: the
        // hardware register retains it until the next MAX evaluation.
        int keep_exp = exp_ == kMinExp ? kMinExp : exp_;
        reset();
        exp_ = keep_exp;
        return;
    }
    int p = msb128(mag);
    int shift = p - cfg_.fracBits;
    if (shift > 0) {
        uint64_t kept = static_cast<uint64_t>(mag >> shift);
        bool round = (mag >> (shift - 1)) & 1;
        bool st = sticky;
        if (shift > 1)
            st = st || (mag & ((static_cast<unsigned __int128>(1)
                                << (shift - 1)) - 1)) != 0;
        if (round && (st || (kept & 1))) {
            kept += 1;
            if (kept >> (cfg_.fracBits + 1)) {
                kept >>= 1;
                ++shift;
            }
        }
        sig_ = kept;
        exp_ = lsb_exp + shift + cfg_.fracBits;
    } else {
        // Widening shift is exact; sticky bits (if any) sit below the
        // round position so RNE truncates them.
        sig_ = static_cast<uint64_t>(mag) << (-shift);
        exp_ = lsb_exp + shift + cfg_.fracBits;
    }
    neg_ = neg;
}

void
ExtendedAccumulator::addValue(bool neg, int lsb_exp, uint64_t mag)
{
    if (mag == 0)
        return;
    int ye = lsb_exp + msbPos(mag);
    if (sig_ == 0) {
        normalizeAndRound(mag, lsb_exp, false, neg);
        // Respect a raised exponent register: adding a tiny value to a
        // zero register aligned high quantizes against that alignment.
        return;
    }

    // Fold a negligibly small operand into sticky instead of aligning
    // across an enormous exponent gap.
    if (ye < exp_ - (cfg_.fracBits + 4)) {
        // Accumulator unchanged: its round bit is zero so RNE keeps it.
        return;
    }
    if (exp_ < ye - (cfg_.fracBits + 4)) {
        normalizeAndRound(mag, lsb_exp, true, neg);
        return;
    }

    // Exact signed add over a shared LSB scale. Both operands fit well
    // within 128 bits: widths <= 64 and alignment <= fracBits + 4 + 64.
    int xl = exp_ - cfg_.fracBits;
    int yl = lsb_exp;
    int common = xl < yl ? xl : yl;
    __int128 x = static_cast<__int128>(sig_) << (xl - common);
    if (neg_)
        x = -x;
    __int128 y = static_cast<__int128>(mag) << (yl - common);
    if (neg)
        y = -y;
    __int128 s = x + y;
    bool rneg = s < 0;
    if (rneg)
        s = -s;
    normalizeAndRound(static_cast<unsigned __int128>(s), common, false,
                      rneg);
}

void
ExtendedAccumulator::addProduct(BFloat16 a, BFloat16 b)
{
    panic_if(!a.isFinite() || !b.isFinite(),
             "non-finite operand in accumulator (a=%04x b=%04x)", a.bits(),
             b.bits());
    if (a.isZero() || b.isZero())
        return;
    uint64_t prod = static_cast<uint64_t>(a.significand()) *
                    static_cast<uint64_t>(b.significand());
    // significands are P/2^7 each, so the product's LSB weighs 2^-14.
    int lsb_exp = a.unbiasedExponent() + b.unbiasedExponent() - 14;
    addValue(a.isNegative() != b.isNegative(), lsb_exp, prod);
}

BFloat16
ExtendedAccumulator::readBFloat16() const
{
    if (sig_ == 0)
        return BFloat16::fromBits(neg_ ? 0x8000 : 0x0000);

    // Round the significand from fracBits down to 7 fractional bits.
    int e = exp_;
    uint64_t kept = sig_;
    int drop = cfg_.fracBits - BFloat16::kManBits;
    if (drop > 0) {
        uint64_t low = sig_ & maskBits(drop);
        kept = sig_ >> drop;
        uint64_t half = uint64_t{1} << (drop - 1);
        if (low > half || (low == half && (kept & 1)))
            kept += 1;
        if (kept >> (BFloat16::kManBits + 1)) {
            kept >>= 1;
            ++e;
        }
    } else {
        kept = sig_ << (-drop);
    }

    int biased = e + BFloat16::kBias;
    if (biased >= 0xff) {
        // Overflow to infinity.
        return BFloat16::fromBits(neg_ ? 0xff80 : 0x7f80);
    }
    if (biased <= 0) {
        // Denormal range flushes to zero.
        return BFloat16::fromBits(neg_ ? 0x8000 : 0x0000);
    }
    return BFloat16::fromFields(neg_, biased,
                                static_cast<int>(kept) & 0x7f);
}

double
ExtendedAccumulator::readDouble() const
{
    if (sig_ == 0)
        return 0.0;
    double v = std::ldexp(static_cast<double>(sig_), exp_ - cfg_.fracBits);
    return neg_ ? -v : v;
}

ChunkedAccumulator::ChunkedAccumulator(AccumulatorConfig cfg)
    : cfg_(cfg), acc_(cfg), running_(0.0f), macsInChunk_(0)
{
    panic_if(cfg_.chunkSize < 1, "chunk size must be positive");
}

void
ChunkedAccumulator::reset()
{
    acc_.reset();
    running_ = 0.0f;
    macsInChunk_ = 0;
}

void
ChunkedAccumulator::addProduct(BFloat16 a, BFloat16 b)
{
    acc_.addProduct(a, b);
    tickMacs(1);
}

void
ChunkedAccumulator::tickMacs(int macs)
{
    macsInChunk_ += macs;
    if (macsInChunk_ >= cfg_.chunkSize)
        flushChunk();
}

void
ChunkedAccumulator::flushChunk()
{
    // Inter-chunk accumulation happens in FP32 arithmetic (Sakr et al.).
    running_ += static_cast<float>(acc_.readDouble());
    acc_.reset();
    macsInChunk_ = 0;
}

float
ChunkedAccumulator::total() const
{
    return running_ + static_cast<float>(acc_.readDouble());
}

} // namespace fpraker
