/**
 * @file
 * Extended-precision accumulator shared by the FPRaker and baseline PEs.
 *
 * The paper's PE accumulates bfloat16 products into a register with a
 * 16-bit significand: 1 hidden bit, 3 further integer bits (worst-case
 * carry room for 8 concurrent products) and 12 fractional bits — 9 bits of
 * extended precision per the chunk-based accumulation scheme of Sakr et
 * al. (chunk size 64) plus 3 round bits. The register is normalized and
 * rounded to nearest-even after every accumulation step, and its exponent
 * is architecturally visible: the PE compares incoming product exponents
 * against it to derive alignment shifts and out-of-bounds decisions.
 *
 * ExtendedAccumulator models that register bit-faithfully at the
 * value level; ChunkedAccumulator adds the inter-chunk FP32 spill.
 */

#ifndef FPRAKER_NUMERIC_ACCUMULATOR_H
#define FPRAKER_NUMERIC_ACCUMULATOR_H

#include <cstdint>

#include "common/bitutil.h"
#include "numeric/bfloat16.h"

namespace fpraker {

/** Architectural parameters of the accumulation datapath. */
struct AccumulatorConfig
{
    /**
     * Fractional significand bits kept after each normalize+round step.
     * Default 12 = 9 extended-precision bits + 3 round bits (paper IV-A).
     * Per-layer accumulator-width profiles (Fig. 21) lower this.
     */
    int fracBits = 12;

    /**
     * Integer significand bits including the hidden one. Only consumed by
     * the area/energy model and by a debug check: the functional model
     * normalizes every step and cannot overflow.
     */
    int intBits = 4;

    /** MACs accumulated per chunk before spilling to FP32 (Sakr et al.). */
    int chunkSize = 64;

    bool operator==(const AccumulatorConfig &) const = default;
};

/**
 * The PE-visible accumulator register: sign, exponent, and a significand
 * normalized to fracBits fractional bits after every operation.
 */
class ExtendedAccumulator
{
  public:
    /** Exponent reported while the register holds zero. */
    static constexpr int kMinExp = -(1 << 20);

    explicit ExtendedAccumulator(AccumulatorConfig cfg = {});

    /** Clear back to +0 with the minimum exponent. */
    void reset();

    /** True when the stored value is zero. */
    bool isZero() const { return sig_ == 0; }

    /** True when the stored value is negative. */
    bool isNegative() const { return neg_; }

    /**
     * Exponent of the leading significand bit (the value the hardware's
     * MAX block compares product exponents against). kMinExp when zero.
     */
    int exponent() const { return exp_; }

    /**
     * Raise the exponent register to @p e (no-op when e <= exponent()),
     * quantizing the stored value to the 2^(e - fracBits) grid with RNE.
     * Models the acc_shift alignment the PE performs when a new set of
     * products carries a larger maximum exponent.
     *
     * Defined inline below (with addValue and normalizeAndRound):
     * these three are the per-term arithmetic of every simulated MAC,
     * hot enough that keeping them header-inline is a measured win.
     */
    void alignTo(int e);

    /**
     * Add the exact value (neg ? -1 : +1) * mag * 2^lsb_exp, then
     * normalize and round to nearest even at fracBits fractional bits.
     * This is the single arithmetic path used by both PE models.
     */
    void addValue(bool neg, int lsb_exp, uint64_t mag);

    /**
     * Accumulate the full product of two bfloat16 values (the bit-parallel
     * baseline datapath). NaN/Inf inputs are rejected by assertion: the
     * training simulator operates on finite traces.
     */
    void addProduct(BFloat16 a, BFloat16 b);

    /** Read out as bfloat16 (RNE to 7 mantissa bits, no denormals). */
    BFloat16 readBFloat16() const;

    /** Exact stored value (fracBits <= 52 so a double is exact). */
    double readDouble() const;

    const AccumulatorConfig &config() const { return cfg_; }

  private:
    /**
     * Install |value| = mag * 2^lsb_exp (with @p sticky noting discarded
     * lower bits) as the new register contents: normalize so the leading
     * bit sits at fracBits, round to nearest even.
     */
    void normalizeAndRound(unsigned __int128 mag, int lsb_exp, bool sticky,
                           bool neg);

    AccumulatorConfig cfg_;
    bool neg_;
    int exp_;
    uint64_t sig_; //!< Normalized to [2^fracBits, 2^(fracBits+1)), or 0.
};

/**
 * Chunk-based accumulation wrapper: products accumulate into the
 * extended-precision register; every chunkSize MACs the register value is
 * added into an FP32 running sum (in FP32 arithmetic) and the register is
 * cleared. This bounds swamping error for long dot products while keeping
 * the per-MAC datapath narrow.
 */
class ChunkedAccumulator
{
  public:
    explicit ChunkedAccumulator(AccumulatorConfig cfg = {});

    /** Clear both the chunk register and the FP32 running sum. */
    void reset();

    /** Accumulate one product through the chunk register. */
    void addProduct(BFloat16 a, BFloat16 b);

    /**
     * Account for @p macs MACs deposited directly into chunkRegister()
     * by a PE model; flushes the chunk when the count is reached.
     * (Inline: called once per simulated set.)
     */
    void
    tickMacs(int macs)
    {
        macsInChunk_ += macs;
        if (macsInChunk_ >= cfg_.chunkSize)
            flushChunk();
    }

    /** Force the current chunk into the FP32 running sum. */
    void flushChunk();

    /** The intra-chunk register, exposed for the PE models. */
    ExtendedAccumulator &chunkRegister() { return acc_; }
    const ExtendedAccumulator &chunkRegister() const { return acc_; }

    /** Total = FP32 running sum + current chunk contents. */
    float total() const;

  private:
    AccumulatorConfig cfg_;
    ExtendedAccumulator acc_;
    float running_;
    int macsInChunk_;
};

// ------------------------------------------------------------------
// Inline hot path: every simulated term lands in one of these three.

namespace detail {

/** Most-significant set bit of a 128-bit magnitude (-1 for zero). */
inline int
msb128(unsigned __int128 v)
{
    uint64_t hi = static_cast<uint64_t>(v >> 64);
    if (hi)
        return 64 + msbPos(hi);
    uint64_t lo = static_cast<uint64_t>(v);
    return msbPos(lo);
}

} // namespace detail

inline void
ExtendedAccumulator::normalizeAndRound(unsigned __int128 mag, int lsb_exp,
                                       bool sticky, bool neg)
{
    if (mag == 0) {
        // An exact cancellation (or a pure-sticky remnant, which RNE
        // truncates) leaves the register at zero. Keep the exponent: the
        // hardware register retains it until the next MAX evaluation.
        int keep_exp = exp_ == kMinExp ? kMinExp : exp_;
        reset();
        exp_ = keep_exp;
        return;
    }
    int p = detail::msb128(mag);
    int shift = p - cfg_.fracBits;
    if (shift > 0) {
        uint64_t kept = static_cast<uint64_t>(mag >> shift);
        bool round = (mag >> (shift - 1)) & 1;
        bool st = sticky;
        if (shift > 1)
            st = st || (mag & ((static_cast<unsigned __int128>(1)
                                << (shift - 1)) - 1)) != 0;
        if (round && (st || (kept & 1))) {
            kept += 1;
            if (kept >> (cfg_.fracBits + 1)) {
                kept >>= 1;
                ++shift;
            }
        }
        sig_ = kept;
        exp_ = lsb_exp + shift + cfg_.fracBits;
    } else {
        // Widening shift is exact; sticky bits (if any) sit below the
        // round position so RNE truncates them.
        sig_ = static_cast<uint64_t>(mag) << (-shift);
        exp_ = lsb_exp + shift + cfg_.fracBits;
    }
    neg_ = neg;
}

inline void
ExtendedAccumulator::alignTo(int e)
{
    if (e <= exp_)
        return;
    if (sig_ == 0) {
        exp_ = e;
        return;
    }
    // Quantize to the 2^(e - fracBits) grid: the stored value is
    // sig_ * 2^(exp_ - fracBits); its new LSB weight is 2^(e - fracBits),
    // so drop (e - exp_) low bits with round-to-nearest-even.
    int drop = e - exp_;
    if (drop > cfg_.fracBits + 1) {
        // Entire value falls below the new window: rounds to zero
        // (the leading bit sits below the half-ULP boundary).
        reset();
        exp_ = e;
        return;
    }
    uint64_t kept = sig_ >> drop;
    bool round = (sig_ >> (drop - 1)) & 1;
    bool sticky = (sig_ & maskBits(drop - 1)) != 0;
    if (round && (sticky || (kept & 1)))
        kept += 1;
    if (kept == 0) {
        reset();
        exp_ = e;
        return;
    }
    // Re-normalize the quantized value (exact: no bits below its LSB).
    int p = msbPos(kept);
    exp_ = e - (cfg_.fracBits - p);
    sig_ = kept << (cfg_.fracBits - p);
}

inline void
ExtendedAccumulator::addValue(bool neg, int lsb_exp, uint64_t mag)
{
    if (mag == 0)
        return;
    int ye = lsb_exp + msbPos(mag);
    if (sig_ == 0) {
        normalizeAndRound(mag, lsb_exp, false, neg);
        // Respect a raised exponent register: adding a tiny value to a
        // zero register aligned high quantizes against that alignment.
        return;
    }

    // Fold a negligibly small operand into sticky instead of aligning
    // across an enormous exponent gap.
    if (ye < exp_ - (cfg_.fracBits + 4)) {
        // Accumulator unchanged: its round bit is zero so RNE keeps it.
        return;
    }
    if (exp_ < ye - (cfg_.fracBits + 4)) {
        normalizeAndRound(mag, lsb_exp, true, neg);
        return;
    }

    // Exact signed add over a shared LSB scale. Both operands fit well
    // within 128 bits: widths <= 64 and alignment <= fracBits + 4 + 64.
    int xl = exp_ - cfg_.fracBits;
    int yl = lsb_exp;
    int common = xl < yl ? xl : yl;
    __int128 x = static_cast<__int128>(sig_) << (xl - common);
    if (neg_)
        x = -x;
    __int128 y = static_cast<__int128>(mag) << (yl - common);
    if (neg)
        y = -y;
    __int128 s = x + y;
    bool rneg = s < 0;
    if (rneg)
        s = -s;
    normalizeAndRound(static_cast<unsigned __int128>(s), common, false,
                      rneg);
}

} // namespace fpraker

#endif // FPRAKER_NUMERIC_ACCUMULATOR_H
