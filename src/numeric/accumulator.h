/**
 * @file
 * Extended-precision accumulator shared by the FPRaker and baseline PEs.
 *
 * The paper's PE accumulates bfloat16 products into a register with a
 * 16-bit significand: 1 hidden bit, 3 further integer bits (worst-case
 * carry room for 8 concurrent products) and 12 fractional bits — 9 bits of
 * extended precision per the chunk-based accumulation scheme of Sakr et
 * al. (chunk size 64) plus 3 round bits. The register is normalized and
 * rounded to nearest-even after every accumulation step, and its exponent
 * is architecturally visible: the PE compares incoming product exponents
 * against it to derive alignment shifts and out-of-bounds decisions.
 *
 * ExtendedAccumulator models that register bit-faithfully at the
 * value level; ChunkedAccumulator adds the inter-chunk FP32 spill.
 */

#ifndef FPRAKER_NUMERIC_ACCUMULATOR_H
#define FPRAKER_NUMERIC_ACCUMULATOR_H

#include <cstdint>

#include "numeric/bfloat16.h"

namespace fpraker {

/** Architectural parameters of the accumulation datapath. */
struct AccumulatorConfig
{
    /**
     * Fractional significand bits kept after each normalize+round step.
     * Default 12 = 9 extended-precision bits + 3 round bits (paper IV-A).
     * Per-layer accumulator-width profiles (Fig. 21) lower this.
     */
    int fracBits = 12;

    /**
     * Integer significand bits including the hidden one. Only consumed by
     * the area/energy model and by a debug check: the functional model
     * normalizes every step and cannot overflow.
     */
    int intBits = 4;

    /** MACs accumulated per chunk before spilling to FP32 (Sakr et al.). */
    int chunkSize = 64;
};

/**
 * The PE-visible accumulator register: sign, exponent, and a significand
 * normalized to fracBits fractional bits after every operation.
 */
class ExtendedAccumulator
{
  public:
    /** Exponent reported while the register holds zero. */
    static constexpr int kMinExp = -(1 << 20);

    explicit ExtendedAccumulator(AccumulatorConfig cfg = {});

    /** Clear back to +0 with the minimum exponent. */
    void reset();

    /** True when the stored value is zero. */
    bool isZero() const { return sig_ == 0; }

    /** True when the stored value is negative. */
    bool isNegative() const { return neg_; }

    /**
     * Exponent of the leading significand bit (the value the hardware's
     * MAX block compares product exponents against). kMinExp when zero.
     */
    int exponent() const { return exp_; }

    /**
     * Raise the exponent register to @p e (no-op when e <= exponent()),
     * quantizing the stored value to the 2^(e - fracBits) grid with RNE.
     * Models the acc_shift alignment the PE performs when a new set of
     * products carries a larger maximum exponent.
     */
    void alignTo(int e);

    /**
     * Add the exact value (neg ? -1 : +1) * mag * 2^lsb_exp, then
     * normalize and round to nearest even at fracBits fractional bits.
     * This is the single arithmetic path used by both PE models.
     */
    void addValue(bool neg, int lsb_exp, uint64_t mag);

    /**
     * Accumulate the full product of two bfloat16 values (the bit-parallel
     * baseline datapath). NaN/Inf inputs are rejected by assertion: the
     * training simulator operates on finite traces.
     */
    void addProduct(BFloat16 a, BFloat16 b);

    /** Read out as bfloat16 (RNE to 7 mantissa bits, no denormals). */
    BFloat16 readBFloat16() const;

    /** Exact stored value (fracBits <= 52 so a double is exact). */
    double readDouble() const;

    const AccumulatorConfig &config() const { return cfg_; }

  private:
    /**
     * Install |value| = mag * 2^lsb_exp (with @p sticky noting discarded
     * lower bits) as the new register contents: normalize so the leading
     * bit sits at fracBits, round to nearest even.
     */
    void normalizeAndRound(unsigned __int128 mag, int lsb_exp, bool sticky,
                           bool neg);

    AccumulatorConfig cfg_;
    bool neg_;
    int exp_;
    uint64_t sig_; //!< Normalized to [2^fracBits, 2^(fracBits+1)), or 0.
};

/**
 * Chunk-based accumulation wrapper: products accumulate into the
 * extended-precision register; every chunkSize MACs the register value is
 * added into an FP32 running sum (in FP32 arithmetic) and the register is
 * cleared. This bounds swamping error for long dot products while keeping
 * the per-MAC datapath narrow.
 */
class ChunkedAccumulator
{
  public:
    explicit ChunkedAccumulator(AccumulatorConfig cfg = {});

    /** Clear both the chunk register and the FP32 running sum. */
    void reset();

    /** Accumulate one product through the chunk register. */
    void addProduct(BFloat16 a, BFloat16 b);

    /**
     * Account for @p macs MACs deposited directly into chunkRegister()
     * by a PE model; flushes the chunk when the count is reached.
     */
    void tickMacs(int macs);

    /** Force the current chunk into the FP32 running sum. */
    void flushChunk();

    /** The intra-chunk register, exposed for the PE models. */
    ExtendedAccumulator &chunkRegister() { return acc_; }
    const ExtendedAccumulator &chunkRegister() const { return acc_; }

    /** Total = FP32 running sum + current chunk contents. */
    float total() const;

  private:
    AccumulatorConfig cfg_;
    ExtendedAccumulator acc_;
    float running_;
    int macsInChunk_;
};

} // namespace fpraker

#endif // FPRAKER_NUMERIC_ACCUMULATOR_H
