/**
 * @file
 * Whole-bf16 decoded-value lookup table (the value memoization grain).
 *
 * TermLut memoizes the NAF recoding of the 8-bit significand domain,
 * but the PE hot paths still re-derive the remaining per-value fields
 * (sign, exponents, significand extraction, zero/finite class, first
 * term shift, stream length) from the raw bits on every set. A bf16 is
 * only 16 bits, so the full value domain is 65536 entries: ValueLut
 * materializes every field the column front-end consumes, once per
 * encoding, and beginSetDecoded / the scalar decodeBRows fallback
 * replace their per-value bit manipulation with one indexed load.
 *
 * Exact by construction: the table is built by running every bit
 * pattern through the same BFloat16 accessors and TermLut streams the
 * scalar code used, and tests/test_memo.cpp differential-checks all
 * 65536 entries against TermEncoder directly.
 */

#ifndef FPRAKER_NUMERIC_VALUE_LUT_H
#define FPRAKER_NUMERIC_VALUE_LUT_H

#include <cstdint>

#include "numeric/term_lut.h"

namespace fpraker {

/** Immutable per-encoding table of all 65536 decoded bf16 values. */
class ValueLut
{
  public:
    // Entry::flags bits.
    static constexpr uint8_t kNegative = 1u << 0;
    static constexpr uint8_t kZero = 1u << 1;
    static constexpr uint8_t kFinite = 1u << 2;

    /** Everything the PE front-end derives from one bf16 value. */
    struct Entry
    {
        /** Term schedule of the significand (into the TermLut). */
        const TermStream *stream = nullptr;
        int16_t unbiasedExp = 0; //!< biasedExponent() - bias.
        int16_t biasedExp = 0;   //!< Raw 8-bit exponent field.
        uint8_t sig = 0;         //!< significand() (0 for zero).
        uint8_t nterms = 0;      //!< stream->size().
        int8_t shift0 = 0;       //!< First-term shift (nterms > 0).
        uint8_t flags = 0;       //!< kNegative | kZero | kFinite.
    };

    /**
     * Shared table for @p enc, built on first use (thread-safe,
     * function-local statics) and immutable afterwards, so concurrent
     * simulation workers read it without synchronization.
     */
    static const ValueLut &of(TermEncoding enc);

    /**
     * The parallel-operand decode table: the B-side fields (sign,
     * exponent, significand, zero/finite class) are encoding-
     * independent, so the static decodeBRows path shares one canonical
     * instance and simply never reads the stream fields.
     */
    static const ValueLut &bDecode() { return of(TermEncoding::Canonical); }

    /** Decoded entry of a raw bf16 bit pattern. */
    const Entry &entry(uint16_t bits) const { return entries_[bits]; }

    TermEncoding encoding() const { return encoding_; }

  private:
    explicit ValueLut(TermEncoding enc);

    TermEncoding encoding_;
    Entry entries_[65536];
};

} // namespace fpraker

#endif // FPRAKER_NUMERIC_VALUE_LUT_H
