#include "numeric/term_lut.h"

namespace fpraker {

TermLut::TermLut(TermEncoding enc)
    : encoding_(enc)
{
    TermEncoder encoder(enc);
    // significand() yields 0 or a normalized value in [0x80, 0xff];
    // the gap [1, 0x7f] is unreachable and left as empty streams.
    streams_[0] = encoder.encodeSignificand(0);
    counts_[0] = 0;
    for (int sig = 0x80; sig <= 0xff; ++sig) {
        streams_[sig] = encoder.encodeSignificand(sig);
        counts_[sig] = static_cast<uint8_t>(streams_[sig].size());
    }
    for (int v = 0; v < 16; ++v)
        nibble_.pop4[v] = static_cast<uint8_t>(__builtin_popcount(v));
    nibble_.nafFold = (enc == TermEncoding::Canonical);
}

const TermLut &
TermLut::of(TermEncoding enc)
{
    static const TermLut canonical(TermEncoding::Canonical);
    static const TermLut raw(TermEncoding::RawBits);
    return enc == TermEncoding::RawBits ? raw : canonical;
}

} // namespace fpraker
