/**
 * @file
 * Golden reference arithmetic for validating the PE models.
 *
 * The cycle-level simulator checks every value it produces against these
 * references (the paper's simulator "models value transfers and
 * computation in time faithfully and checks the produced values for
 * correctness against the golden values").
 */

#ifndef FPRAKER_NUMERIC_REFERENCE_H
#define FPRAKER_NUMERIC_REFERENCE_H

#include <cstddef>
#include <vector>

#include "numeric/accumulator.h"
#include "numeric/bfloat16.h"

namespace fpraker {

/** Exact (FP64) dot product of bfloat16 vectors. */
double dotDouble(const std::vector<BFloat16> &a,
                 const std::vector<BFloat16> &b);

/** FP32 dot product (sequential fused order). */
float dotFloat(const std::vector<BFloat16> &a,
               const std::vector<BFloat16> &b);

/**
 * Reference dot product through the extended-precision chunked
 * accumulator (sequential product order).
 */
float dotChunked(const std::vector<BFloat16> &a,
                 const std::vector<BFloat16> &b,
                 const AccumulatorConfig &cfg);

/** |x - ref| / max(|ref|, floor); floor guards near-zero references. */
double relError(double x, double ref, double floor = 1e-30);

/**
 * Tolerance for comparing an extended-accumulator result against FP64:
 * each accumulation step rounds at fracBits, so after n steps the error
 * is bounded by ~n ulps at that precision.
 */
double accumulationTolerance(const AccumulatorConfig &cfg, size_t steps);

} // namespace fpraker

#endif // FPRAKER_NUMERIC_REFERENCE_H
