#include "numeric/slab_ops.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define FPRAKER_SLAB_X86 1
#include <immintrin.h>
#endif

namespace fpraker {
namespace slab {

void
countTermsScalar(const BFloat16 *values, size_t n,
                 const uint8_t counts[256], uint64_t *zeros,
                 uint64_t *terms)
{
    uint64_t z = 0, t = 0;
    for (size_t i = 0; i < n; ++i) {
        const BFloat16 v = values[i];
        if (v.isZero()) {
            z += 1;
            continue;
        }
        t += counts[v.significand()];
    }
    *zeros += z;
    *terms += t;
}

void
packBf16Scalar(const int16_t *biased_exp, const uint8_t *man,
               const uint8_t *neg, size_t n, BFloat16 *out)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = BFloat16::fromBits(static_cast<uint16_t>(
            (neg[i] ? 0x8000u : 0u) |
            (static_cast<unsigned>(biased_exp[i] & 0xff) << 7) |
            (man[i] & 0x7fu)));
}

#ifdef FPRAKER_SLAB_X86

namespace {

bool
haveAvx2()
{
    // __builtin_cpu_init is idempotent; calling it here avoids any
    // static-initialization-order dependency on libgcc's constructor.
    __builtin_cpu_init();
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

/**
 * Classify 8 bf16 lanes: *sig8 receives their significands packed to
 * bytes (0 for zero values) in the low 8 bytes; the return value is
 * the 16-bit zero mask from movemask_epi8 (two bits per lane).
 */
inline int
classify8(__m128i v, __m128i *sig8)
{
    const __m128i vzero = _mm_setzero_si128();
    const __m128i z = _mm_cmpeq_epi16(
        _mm_and_si128(v, _mm_set1_epi16(0x7fff)), vzero);
    const __m128i sig16 = _mm_andnot_si128(
        z, _mm_or_si128(_mm_and_si128(v, _mm_set1_epi16(0x7f)),
                        _mm_set1_epi16(0x80)));
    *sig8 = _mm_packus_epi16(sig16, vzero);
    return _mm_movemask_epi8(z);
}

void
countTermsSse2(const BFloat16 *values, size_t n,
               const uint8_t counts[256], uint64_t *zeros,
               uint64_t *terms)
{
    uint64_t z = 0, t = 0;
    size_t i = 0;
    alignas(16) uint8_t sig[16];
    for (; i + 16 <= n; i += 16) {
        __m128i v0, v1, s0, s1;
        std::memcpy(&v0, values + i, 16);
        std::memcpy(&v1, values + i + 8, 16);
        const int zm0 = classify8(v0, &s0);
        const int zm1 = classify8(v1, &s1);
        z += static_cast<unsigned>(std::popcount(
                 static_cast<unsigned>(zm0) |
                 (static_cast<unsigned>(zm1) << 16))) /
             2;
        if (zm0 != 0xffff || zm1 != 0xffff) {
            _mm_store_si128(reinterpret_cast<__m128i *>(sig),
                            _mm_unpacklo_epi64(s0, s1));
            for (int j = 0; j < 16; ++j)
                t += counts[sig[j]];
        }
    }
    *zeros += z;
    *terms += t;
    if (i < n)
        countTermsScalar(values + i, n - i, counts, zeros, terms);
}

__attribute__((target("avx2"))) void
countTermsAvx2(const BFloat16 *values, size_t n,
               const uint8_t counts[256], uint64_t *zeros,
               uint64_t *terms)
{
    uint64_t z = 0, t = 0;
    size_t i = 0;
    alignas(32) uint8_t sig[32];
    const __m256i vzero = _mm256_setzero_si256();
    for (; i + 32 <= n; i += 32) {
        __m256i v0, v1;
        std::memcpy(&v0, values + i, 32);
        std::memcpy(&v1, values + i + 16, 32);
        const __m256i z0 = _mm256_cmpeq_epi16(
            _mm256_and_si256(v0, _mm256_set1_epi16(0x7fff)), vzero);
        const __m256i z1 = _mm256_cmpeq_epi16(
            _mm256_and_si256(v1, _mm256_set1_epi16(0x7fff)), vzero);
        const uint32_t zm0 =
            static_cast<uint32_t>(_mm256_movemask_epi8(z0));
        const uint32_t zm1 =
            static_cast<uint32_t>(_mm256_movemask_epi8(z1));
        z += (std::popcount(zm0) + std::popcount(zm1)) / 2;
        if (zm0 != 0xffffffffu || zm1 != 0xffffffffu) {
            const __m256i s0 = _mm256_andnot_si256(
                z0,
                _mm256_or_si256(
                    _mm256_and_si256(v0, _mm256_set1_epi16(0x7f)),
                    _mm256_set1_epi16(0x80)));
            const __m256i s1 = _mm256_andnot_si256(
                z1,
                _mm256_or_si256(
                    _mm256_and_si256(v1, _mm256_set1_epi16(0x7f)),
                    _mm256_set1_epi16(0x80)));
            // packus interleaves 128-bit halves; the per-byte counts
            // sum is permutation-invariant, so no fix-up shuffle.
            _mm256_store_si256(reinterpret_cast<__m256i *>(sig),
                               _mm256_packus_epi16(s0, s1));
            for (int j = 0; j < 32; ++j)
                t += counts[sig[j]];
        }
    }
    *zeros += z;
    *terms += t;
    if (i < n)
        countTermsSse2(values + i, n - i, counts, zeros, terms);
}

void
packBf16Sse2(const int16_t *biased_exp, const uint8_t *man,
             const uint8_t *neg, size_t n, BFloat16 *out)
{
    const __m128i vzero = _mm_setzero_si128();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i e, m8, s8;
        std::memcpy(&e, biased_exp + i, 16);
        m8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(man + i));
        s8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(neg + i));
        const __m128i m16 = _mm_unpacklo_epi8(m8, vzero);
        const __m128i s16 = _mm_unpacklo_epi8(s8, vzero);
        const __m128i bits = _mm_or_si128(
            _mm_or_si128(
                _mm_slli_epi16(_mm_and_si128(e, _mm_set1_epi16(0xff)),
                               7),
                _mm_and_si128(m16, _mm_set1_epi16(0x7f))),
            _mm_slli_epi16(s16, 15));
        std::memcpy(out + i, &bits, 16);
    }
    if (i < n)
        packBf16Scalar(biased_exp + i, man + i, neg + i, n - i,
                       out + i);
}

__attribute__((target("avx2"))) void
packBf16Avx2(const int16_t *biased_exp, const uint8_t *man,
             const uint8_t *neg, size_t n, BFloat16 *out)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m256i e;
        std::memcpy(&e, biased_exp + i, 32);
        const __m256i m16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(man + i)));
        const __m256i s16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(neg + i)));
        const __m256i bits = _mm256_or_si256(
            _mm256_or_si256(
                _mm256_slli_epi16(
                    _mm256_and_si256(e, _mm256_set1_epi16(0xff)), 7),
                _mm256_and_si256(m16, _mm256_set1_epi16(0x7f))),
            _mm256_slli_epi16(s16, 15));
        std::memcpy(out + i, &bits, 32);
    }
    if (i < n)
        packBf16Sse2(biased_exp + i, man + i, neg + i, n - i, out + i);
}

} // namespace

const char *
simdLevel()
{
    return haveAvx2() ? "avx2" : "sse2";
}

void
countTerms(const BFloat16 *values, size_t n, const uint8_t counts[256],
           uint64_t *zeros, uint64_t *terms)
{
    if (haveAvx2())
        countTermsAvx2(values, n, counts, zeros, terms);
    else
        countTermsSse2(values, n, counts, zeros, terms);
}

void
packBf16(const int16_t *biased_exp, const uint8_t *man,
         const uint8_t *neg, size_t n, BFloat16 *out)
{
    if (haveAvx2())
        packBf16Avx2(biased_exp, man, neg, n, out);
    else
        packBf16Sse2(biased_exp, man, neg, n, out);
}

#else // !FPRAKER_SLAB_X86

const char *
simdLevel()
{
    return "scalar";
}

void
countTerms(const BFloat16 *values, size_t n, const uint8_t counts[256],
           uint64_t *zeros, uint64_t *terms)
{
    countTermsScalar(values, n, counts, zeros, terms);
}

void
packBf16(const int16_t *biased_exp, const uint8_t *man,
         const uint8_t *neg, size_t n, BFloat16 *out)
{
    packBf16Scalar(biased_exp, man, neg, n, out);
}

#endif // FPRAKER_SLAB_X86

} // namespace slab
} // namespace fpraker
