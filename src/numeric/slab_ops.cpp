#include "numeric/slab_ops.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define FPRAKER_SLAB_X86 1
#include <immintrin.h>
#endif

namespace fpraker {
namespace slab {

void
countTermsScalar(const BFloat16 *values, size_t n,
                 const uint8_t counts[256], uint64_t *zeros,
                 uint64_t *terms)
{
    uint64_t z = 0, t = 0;
    for (size_t i = 0; i < n; ++i) {
        const BFloat16 v = values[i];
        if (v.isZero()) {
            z += 1;
            continue;
        }
        t += counts[v.significand()];
    }
    *zeros += z;
    *terms += t;
}

void
packBf16Scalar(const int16_t *biased_exp, const uint8_t *man,
               const uint8_t *neg, size_t n, BFloat16 *out)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = BFloat16::fromBits(static_cast<uint16_t>(
            (neg[i] ? 0x8000u : 0u) |
            (static_cast<unsigned>(biased_exp[i] & 0xff) << 7) |
            (man[i] & 0x7fu)));
}

#ifdef FPRAKER_SLAB_X86

namespace {

bool
haveAvx2()
{
    // __builtin_cpu_init is idempotent; calling it here avoids any
    // static-initialization-order dependency on libgcc's constructor.
    __builtin_cpu_init();
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
}

bool
haveAvx512()
{
    __builtin_cpu_init();
    static const bool have = __builtin_cpu_supports("avx512f") &&
                             __builtin_cpu_supports("avx512bw");
    return have;
}

/**
 * Classify 8 bf16 lanes: *sig8 receives their significands packed to
 * bytes (0 for zero values) in the low 8 bytes; the return value is
 * the 16-bit zero mask from movemask_epi8 (two bits per lane).
 */
inline int
classify8(__m128i v, __m128i *sig8)
{
    const __m128i vzero = _mm_setzero_si128();
    const __m128i z = _mm_cmpeq_epi16(
        _mm_and_si128(v, _mm_set1_epi16(0x7fff)), vzero);
    const __m128i sig16 = _mm_andnot_si128(
        z, _mm_or_si128(_mm_and_si128(v, _mm_set1_epi16(0x7f)),
                        _mm_set1_epi16(0x80)));
    *sig8 = _mm_packus_epi16(sig16, vzero);
    return _mm_movemask_epi8(z);
}

// SSE2 predates pshufb (SSSE3), so this tier keeps the 256-entry
// memory-LUT walk; the nibble LUT starts at AVX2.
void
countTermsSse2(const BFloat16 *values, size_t n,
               const uint8_t counts[256], uint64_t *zeros,
               uint64_t *terms)
{
    uint64_t z = 0, t = 0;
    size_t i = 0;
    alignas(16) uint8_t sig[16];
    for (; i + 16 <= n; i += 16) {
        __m128i v0, v1, s0, s1;
        std::memcpy(&v0, values + i, 16);
        std::memcpy(&v1, values + i + 8, 16);
        const int zm0 = classify8(v0, &s0);
        const int zm1 = classify8(v1, &s1);
        z += static_cast<unsigned>(std::popcount(
                 static_cast<unsigned>(zm0) |
                 (static_cast<unsigned>(zm1) << 16))) /
             2;
        if (zm0 != 0xffff || zm1 != 0xffff) {
            _mm_store_si128(reinterpret_cast<__m128i *>(sig),
                            _mm_unpacklo_epi64(s0, s1));
            for (int j = 0; j < 16; ++j)
                t += counts[sig[j]];
        }
    }
    *zeros += z;
    *terms += t;
    if (i < n)
        countTermsScalar(values + i, n - i, counts, zeros, terms);
}

/**
 * Extract the 16-bit significand lanes of @p v (0 for zero values)
 * folded for counting: with @p fold set, x -> x ^ 3x maps the NAF
 * digit count onto popcount (3x needs the 16-bit width). *zero_mask
 * receives the movemask_epi8 zero-lane mask.
 */
__attribute__((target("avx2"))) inline __m256i
countFold16(__m256i v, bool fold, uint32_t *zero_mask)
{
    const __m256i z = _mm256_cmpeq_epi16(
        _mm256_and_si256(v, _mm256_set1_epi16(0x7fff)),
        _mm256_setzero_si256());
    *zero_mask = static_cast<uint32_t>(_mm256_movemask_epi8(z));
    const __m256i sig = _mm256_andnot_si256(
        z, _mm256_or_si256(_mm256_and_si256(v, _mm256_set1_epi16(0x7f)),
                           _mm256_set1_epi16(0x80)));
    if (!fold)
        return sig;
    const __m256i x3 = _mm256_add_epi16(sig, _mm256_slli_epi16(sig, 1));
    return _mm256_xor_si256(sig, x3);
}

__attribute__((target("avx2"))) void
countTermsAvx2(const BFloat16 *values, size_t n,
               const uint8_t counts[256], const NibbleCountLut &nib,
               uint64_t *zeros, uint64_t *terms)
{
    const __m256i tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(nib.pop4)));
    const __m256i lomask = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    uint64_t z = 0;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i v0, v1;
        std::memcpy(&v0, values + i, 32);
        std::memcpy(&v1, values + i + 16, 32);
        uint32_t zm0, zm1;
        const __m256i t0 = countFold16(v0, nib.nafFold, &zm0);
        const __m256i t1 = countFold16(v1, nib.nafFold, &zm1);
        z += (std::popcount(zm0) + std::popcount(zm1)) / 2;
        // Byte-wise nibble popcount over both vectors: each folded
        // 16-bit lane contributes its two bytes independently, and the
        // per-byte sums (<= 16 per vector pair) stay well inside uint8.
        const __m256i c0 = _mm256_add_epi8(
            _mm256_shuffle_epi8(tbl, _mm256_and_si256(t0, lomask)),
            _mm256_shuffle_epi8(
                tbl,
                _mm256_and_si256(_mm256_srli_epi16(t0, 4), lomask)));
        const __m256i c1 = _mm256_add_epi8(
            _mm256_shuffle_epi8(tbl, _mm256_and_si256(t1, lomask)),
            _mm256_shuffle_epi8(
                tbl,
                _mm256_and_si256(_mm256_srli_epi16(t1, 4), lomask)));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(_mm256_add_epi8(c0, c1),
                                 _mm256_setzero_si256()));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    *terms += lanes[0] + lanes[1] + lanes[2] + lanes[3];
    *zeros += z;
    if (i < n)
        countTermsSse2(values + i, n - i, counts, zeros, terms);
}

__attribute__((target("avx512f,avx512bw"))) inline __m512i
countFold16Z(__m512i v, bool fold, uint32_t *zero_count)
{
    const __mmask32 zm = _mm512_cmpeq_epi16_mask(
        _mm512_and_si512(v, _mm512_set1_epi16(0x7fff)),
        _mm512_setzero_si512());
    *zero_count = static_cast<uint32_t>(
        std::popcount(static_cast<uint32_t>(zm)));
    const __m512i sig = _mm512_maskz_mov_epi16(
        static_cast<__mmask32>(~zm),
        _mm512_or_si512(_mm512_and_si512(v, _mm512_set1_epi16(0x7f)),
                        _mm512_set1_epi16(0x80)));
    if (!fold)
        return sig;
    const __m512i x3 = _mm512_add_epi16(sig, _mm512_slli_epi16(sig, 1));
    return _mm512_xor_si512(sig, x3);
}

__attribute__((target("avx512f,avx512bw"))) void
countTermsAvx512(const BFloat16 *values, size_t n,
                 const uint8_t counts[256], const NibbleCountLut &nib,
                 uint64_t *zeros, uint64_t *terms)
{
    const __m512i tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(
        reinterpret_cast<const __m128i *>(nib.pop4)));
    const __m512i lomask = _mm512_set1_epi8(0x0f);
    __m512i acc = _mm512_setzero_si512();
    uint64_t z = 0;
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m512i v0, v1;
        std::memcpy(&v0, values + i, 64);
        std::memcpy(&v1, values + i + 32, 64);
        uint32_t zc0, zc1;
        const __m512i t0 = countFold16Z(v0, nib.nafFold, &zc0);
        const __m512i t1 = countFold16Z(v1, nib.nafFold, &zc1);
        z += zc0 + zc1;
        const __m512i c0 = _mm512_add_epi8(
            _mm512_shuffle_epi8(tbl, _mm512_and_si512(t0, lomask)),
            _mm512_shuffle_epi8(
                tbl,
                _mm512_and_si512(_mm512_srli_epi16(t0, 4), lomask)));
        const __m512i c1 = _mm512_add_epi8(
            _mm512_shuffle_epi8(tbl, _mm512_and_si512(t1, lomask)),
            _mm512_shuffle_epi8(
                tbl,
                _mm512_and_si512(_mm512_srli_epi16(t1, 4), lomask)));
        acc = _mm512_add_epi64(
            acc, _mm512_sad_epu8(_mm512_add_epi8(c0, c1),
                                 _mm512_setzero_si512()));
    }
    *terms += static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
    *zeros += z;
    if (i < n)
        countTermsAvx2(values + i, n - i, counts, nib, zeros, terms);
}

void
packBf16Sse2(const int16_t *biased_exp, const uint8_t *man,
             const uint8_t *neg, size_t n, BFloat16 *out)
{
    const __m128i vzero = _mm_setzero_si128();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i e, m8, s8;
        std::memcpy(&e, biased_exp + i, 16);
        m8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(man + i));
        s8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(neg + i));
        const __m128i m16 = _mm_unpacklo_epi8(m8, vzero);
        const __m128i s16 = _mm_unpacklo_epi8(s8, vzero);
        const __m128i bits = _mm_or_si128(
            _mm_or_si128(
                _mm_slli_epi16(_mm_and_si128(e, _mm_set1_epi16(0xff)),
                               7),
                _mm_and_si128(m16, _mm_set1_epi16(0x7f))),
            _mm_slli_epi16(s16, 15));
        std::memcpy(out + i, &bits, 16);
    }
    if (i < n)
        packBf16Scalar(biased_exp + i, man + i, neg + i, n - i,
                       out + i);
}

__attribute__((target("avx2"))) void
packBf16Avx2(const int16_t *biased_exp, const uint8_t *man,
             const uint8_t *neg, size_t n, BFloat16 *out)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m256i e;
        std::memcpy(&e, biased_exp + i, 32);
        const __m256i m16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(man + i)));
        const __m256i s16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(neg + i)));
        const __m256i bits = _mm256_or_si256(
            _mm256_or_si256(
                _mm256_slli_epi16(
                    _mm256_and_si256(e, _mm256_set1_epi16(0xff)), 7),
                _mm256_and_si256(m16, _mm256_set1_epi16(0x7f))),
            _mm256_slli_epi16(s16, 15));
        std::memcpy(out + i, &bits, 32);
    }
    if (i < n)
        packBf16Sse2(biased_exp + i, man + i, neg + i, n - i, out + i);
}

__attribute__((target("avx512f,avx512bw"))) void
packBf16Avx512(const int16_t *biased_exp, const uint8_t *man,
               const uint8_t *neg, size_t n, BFloat16 *out)
{
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m512i e;
        std::memcpy(&e, biased_exp + i, 64);
        const __m512i m16 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(man + i)));
        const __m512i s16 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(neg + i)));
        const __m512i bits = _mm512_or_si512(
            _mm512_or_si512(
                _mm512_slli_epi16(
                    _mm512_and_si512(e, _mm512_set1_epi16(0xff)), 7),
                _mm512_and_si512(m16, _mm512_set1_epi16(0x7f))),
            _mm512_slli_epi16(s16, 15));
        std::memcpy(out + i, &bits, 64);
    }
    if (i < n)
        packBf16Avx2(biased_exp + i, man + i, neg + i, n - i, out + i);
}

} // namespace

bool
tierCompiled(SimdTier tier)
{
    (void)tier;
    return true;
}

bool
tierSupported(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
    case SimdTier::Sse2:
        return true;
    case SimdTier::Avx2:
        return haveAvx2();
    case SimdTier::Avx512:
        return haveAvx512();
    }
    return false;
}

void
countTermsAt(SimdTier tier, const BFloat16 *values, size_t n,
             const uint8_t counts[256], const NibbleCountLut &nib,
             uint64_t *zeros, uint64_t *terms)
{
    panic_if(!tierSupported(tier), "countTermsAt: tier %s unsupported",
             tierName(tier));
    switch (tier) {
    case SimdTier::Scalar:
        countTermsScalar(values, n, counts, zeros, terms);
        return;
    case SimdTier::Sse2:
        countTermsSse2(values, n, counts, zeros, terms);
        return;
    case SimdTier::Avx2:
        countTermsAvx2(values, n, counts, nib, zeros, terms);
        return;
    case SimdTier::Avx512:
        countTermsAvx512(values, n, counts, nib, zeros, terms);
        return;
    }
}

void
packBf16At(SimdTier tier, const int16_t *biased_exp, const uint8_t *man,
           const uint8_t *neg, size_t n, BFloat16 *out)
{
    panic_if(!tierSupported(tier), "packBf16At: tier %s unsupported",
             tierName(tier));
    switch (tier) {
    case SimdTier::Scalar:
        packBf16Scalar(biased_exp, man, neg, n, out);
        return;
    case SimdTier::Sse2:
        packBf16Sse2(biased_exp, man, neg, n, out);
        return;
    case SimdTier::Avx2:
        packBf16Avx2(biased_exp, man, neg, n, out);
        return;
    case SimdTier::Avx512:
        packBf16Avx512(biased_exp, man, neg, n, out);
        return;
    }
}

#else // !FPRAKER_SLAB_X86

bool
tierCompiled(SimdTier tier)
{
    return tier == SimdTier::Scalar;
}

bool
tierSupported(SimdTier tier)
{
    return tier == SimdTier::Scalar;
}

void
countTermsAt(SimdTier tier, const BFloat16 *values, size_t n,
             const uint8_t counts[256], const NibbleCountLut &nib,
             uint64_t *zeros, uint64_t *terms)
{
    (void)nib;
    panic_if(tier != SimdTier::Scalar,
             "countTermsAt: tier %s not compiled", tierName(tier));
    countTermsScalar(values, n, counts, zeros, terms);
}

void
packBf16At(SimdTier tier, const int16_t *biased_exp, const uint8_t *man,
           const uint8_t *neg, size_t n, BFloat16 *out)
{
    panic_if(tier != SimdTier::Scalar,
             "packBf16At: tier %s not compiled", tierName(tier));
    packBf16Scalar(biased_exp, man, neg, n, out);
}

#endif // FPRAKER_SLAB_X86

const char *
tierName(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return "scalar";
    case SimdTier::Sse2:
        return "sse2";
    case SimdTier::Avx2:
        return "avx2";
    case SimdTier::Avx512:
        return "avx512";
    }
    return "scalar";
}

bool
parseSimdTier(const char *text, SimdTier *out)
{
    if (text == nullptr)
        return false;
    for (int i = 0; i < kNumSimdTiers; ++i) {
        const SimdTier tier = static_cast<SimdTier>(i);
        if (std::strcmp(text, tierName(tier)) == 0) {
            *out = tier;
            return true;
        }
    }
    return false;
}

namespace {

SimdTier
resolveActiveTier()
{
    const char *env = std::getenv("FPRAKER_SIMD");
    if (env == nullptr || *env == '\0') {
        for (int i = kNumSimdTiers - 1; i > 0; --i) {
            const SimdTier tier = static_cast<SimdTier>(i);
            if (tierSupported(tier))
                return tier;
        }
        return SimdTier::Scalar;
    }
    SimdTier forced;
    fatal_if(!parseSimdTier(env, &forced),
             "FPRAKER_SIMD=%s: unknown tier "
             "(expected scalar, sse2, avx2, or avx512)",
             env);
    fatal_if(!tierSupported(forced),
             "FPRAKER_SIMD=%s: tier is not %s — refusing to fall back "
             "silently",
             env,
             tierCompiled(forced) ? "supported by this host"
                                  : "compiled into this build");
    return forced;
}

} // namespace

SimdTier
activeTier()
{
    static const SimdTier tier = resolveActiveTier();
    return tier;
}

const char *
simdLevel()
{
    return tierName(activeTier());
}

void
countTerms(const BFloat16 *values, size_t n, const uint8_t counts[256],
           const NibbleCountLut &nib, uint64_t *zeros, uint64_t *terms)
{
    countTermsAt(activeTier(), values, n, counts, nib, zeros, terms);
}

void
packBf16(const int16_t *biased_exp, const uint8_t *man,
         const uint8_t *neg, size_t n, BFloat16 *out)
{
    packBf16At(activeTier(), biased_exp, man, neg, n, out);
}

} // namespace slab
} // namespace fpraker
