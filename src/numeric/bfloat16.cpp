#include "numeric/bfloat16.h"

#include <bit>
#include <cstring>

namespace fpraker {

BFloat16
BFloat16::fromFloat(float f)
{
    uint32_t u = std::bit_cast<uint32_t>(f);
    uint32_t exp = (u >> 23) & 0xff;
    uint32_t man = u & 0x7fffffu;

    if (exp == 0xff) {
        // Inf/NaN: keep the class; make NaN quiet-ish by ensuring a
        // non-zero truncated mantissa.
        uint16_t hi = static_cast<uint16_t>(u >> 16);
        if (man != 0 && (hi & 0x7f) == 0)
            hi |= 0x40;
        return fromBits(hi);
    }

    // Round to nearest even at bit 16.
    uint32_t lsb = (u >> 16) & 1u;
    uint32_t rounding = 0x7fffu + lsb;
    u += rounding;
    uint16_t hi = static_cast<uint16_t>(u >> 16);

    // Flush denormals (and anything that rounded down into the denormal
    // range) to signed zero: the paper's hardware does not support
    // denormals.
    if (((hi >> kManBits) & 0xff) == 0)
        hi &= 0x8000u;
    return fromBits(hi);
}

float
BFloat16::toFloat() const
{
    uint32_t u = static_cast<uint32_t>(bits_) << 16;
    return std::bit_cast<float>(u);
}

} // namespace fpraker
