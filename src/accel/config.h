/**
 * @file
 * Accelerator configurations (paper Table II).
 *
 * Both machines are built from 8x8-PE tiles whose PEs process 8 MAC
 * lanes. Under the iso-compute-area constraint (an FPRaker tile is 0.22x
 * the baseline tile post-layout), the baseline deploys 8 tiles (4096
 * bfloat16 MACs/cycle) and FPRaker deploys 36.
 */

#ifndef FPRAKER_ACCEL_CONFIG_H
#define FPRAKER_ACCEL_CONFIG_H

#include <cstdint>

#include "memory/dram.h"
#include "memory/global_buffer.h"
#include "tile/tile.h"

namespace fpraker {

/** Full accelerator configuration. */
struct AcceleratorConfig
{
    TileConfig tile;       //!< FPRaker tile parameters.
    int fprTiles = 36;     //!< FPRaker tile count (iso-compute-area).
    TileConfig baselineTile; //!< Baseline tile geometry (always 8x8).
    int baselineTiles = 8; //!< Baseline tile count.
    GlobalBufferConfig globalBuffer;
    DramConfig dram;
    bool useBdc = true; //!< Exponent base-delta compression off-chip.

    /**
     * Training minibatch size used to amortize off-chip weight traffic
     * for convolution layers (whose GEMM M covers one sample): weights
     * are fetched once per batch and reused across its samples. FC and
     * attention layers already fold the batch into M.
     */
    int convWeightBatch = 32;

    /**
     * Global-buffer capacity available to stash forward activations
     * for the backward pass. Models whose total activation footprint
     * fits never spill the stash to DRAM; larger models write it out
     * during the forward pass and read it back for the weight-gradient
     * computation.
     */
    uint64_t actStashBytes = 24ull << 20;

    /**
     * Capacity available to the transient tensors flowing between
     * adjacent layers (an output consumed by the next layer, a
     * gradient consumed by the previous one). Tensors larger than this
     * spill even between adjacent layers.
     */
    uint64_t gbTransientBytes = 12ull << 20;

    /**
     * Choose the serial operand per layer and op (an FPRaker
     * contribution; the Bit-Pragmatic comparison PE always serializes
     * the first operand).
     */
    bool autoSerialSide = true;

    /**
     * Adjacent tile steps served from the 2 KB per-tile scratchpads
     * (Table II) per global-buffer fetch: operand blocks are reused
     * across neighbouring M/N tiles, dividing GB traffic.
     */
    int scratchpadReuse = 8;

    /** Sampling: tile steps simulated per layer-op (scaled up after). */
    int sampleSteps = 192;
    uint64_t seed = 0xf9a4e5;

    /**
     * Content-addressed simulation memoization (sim/sim_memo.h):
     * phase samples reuse cached burst/phase results through
     * SimMemo::global() when their keyed content matches. Results are
     * bit-identical either way (FPRAKER_MEMO=off proves it); false
     * forces the unmemoized path, e.g. for timing comparisons.
     */
    bool memoize = true;

    /**
     * Simulation worker threads: the independent (layer, op) jobs of a
     * model run — and the tile columns inside each phase sample —
     * shard across a SimEngine of this size. Results are bit-identical
     * for any value. 0 defers to FPRAKER_THREADS (default serial).
     */
    int threads = 0;

    /** Paper Table II values. */
    static AcceleratorConfig paperDefault();

    /** MACs per cycle of the bit-parallel baseline. */
    int
    baselineMacsPerCycle() const
    {
        return baselineTiles * tile.rows * tile.cols * tile.pe.lanes;
    }
};

} // namespace fpraker

#endif // FPRAKER_ACCEL_CONFIG_H
