#include "accel/accelerator.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/logging.h"
#include "compress/base_delta.h"

namespace fpraker {

void
ScaledPeActivity::merge(const ScaledPeActivity &o)
{
    laneUseful += o.laneUseful;
    laneNoTerm += o.laneNoTerm;
    laneShiftRange += o.laneShiftRange;
    laneInterPe += o.laneInterPe;
    laneExponent += o.laneExponent;
    termsProcessed += o.termsProcessed;
    termsZeroSkipped += o.termsZeroSkipped;
    termsObSkipped += o.termsObSkipped;
    macs += o.macs;
}

ScaledPeActivity
ScaledPeActivity::fromStats(const PeStats &s, double scale)
{
    ScaledPeActivity a;
    a.laneUseful = static_cast<double>(s.laneUseful) * scale;
    a.laneNoTerm = static_cast<double>(s.laneNoTerm) * scale;
    a.laneShiftRange = static_cast<double>(s.laneShiftRange) * scale;
    a.laneInterPe = static_cast<double>(s.laneInterPe) * scale;
    a.laneExponent = static_cast<double>(s.laneExponent) * scale;
    a.termsProcessed = static_cast<double>(s.termsProcessed) * scale;
    a.termsZeroSkipped = static_cast<double>(s.termsZeroSkipped) * scale;
    a.termsObSkipped = static_cast<double>(s.termsObSkipped) * scale;
    a.macs = static_cast<double>(s.macs) * scale;
    return a;
}

double
ModelRunReport::speedupForOp(TrainingOp op) const
{
    double fpr = 0, base = 0;
    for (const auto &r : ops) {
        if (r.op != op)
            continue;
        fpr += r.fprCycles;
        base += r.baseCycles;
    }
    return fpr > 0 ? base / fpr : 1.0;
}

Accelerator::Accelerator(AcceleratorConfig cfg,
                         EnergyModelConfig energy_cfg)
    : cfg_(cfg), energy_(energy_cfg),
      ownedEngine_(std::make_unique<SimEngine>(cfg.threads)),
      engine_(ownedEngine_.get()), tilePool_(cfg_.tile)
{
    panic_if(cfg_.fprTiles < 1 || cfg_.baselineTiles < 1,
             "need at least one tile per machine");
}

Accelerator::Accelerator(AcceleratorConfig cfg,
                         EnergyModelConfig energy_cfg, SimEngine *shared)
    : cfg_(cfg), energy_(energy_cfg), engine_(shared),
      tilePool_(cfg_.tile)
{
    panic_if(!shared, "borrowed engine must not be null");
    panic_if(cfg_.fprTiles < 1 || cfg_.baselineTiles < 1,
             "need at least one tile per machine");
}

namespace {

/** Off-chip bytes for one (layer, op): operands in, result out. */
struct OpTraffic
{
    double first = 0, second = 0, out = 0;
    double total() const { return first + second + out; }
};

/**
 * Off-chip traffic of one (layer, op) under the on-chip dataflow:
 * transient tensors (a layer's output feeding the next layer, the
 * gradient flowing backward) stay in the global buffer when they fit;
 * the forward activation stash spills to DRAM only when the model's
 * total activation footprint exceeds the stash capacity; conv weights
 * and weight gradients are amortized over the minibatch.
 */
OpTraffic
trafficBytes(const LayerShape &l, TrainingOp op, int conv_weight_batch,
             bool stash_on_chip, uint64_t transient_cap)
{
    // The activation footprint undoes im2col duplication: a conv reads
    // each input value kernel^2 times from on-chip buffers but moves
    // it off-chip only once.
    const double i_bytes =
        2.0 * static_cast<double>(l.inputFootprintValues());
    const double z_bytes = 2.0 * static_cast<double>(l.m) * l.n;
    double w_bytes = 2.0 * static_cast<double>(l.k) * l.n;
    if (l.type == LayerType::Conv && conv_weight_batch > 1)
        w_bytes /= static_cast<double>(conv_weight_batch);

    const bool i_fits = i_bytes <= static_cast<double>(transient_cap);
    const bool z_fits = z_bytes <= static_cast<double>(transient_cap);

    switch (op) {
      case TrainingOp::Forward:
        // Input arrives from the previous layer on-chip; the output is
        // written to the backward stash (DRAM only when it spills).
        return {i_fits ? 0.0 : i_bytes, w_bytes,
                stash_on_chip ? 0.0 : z_bytes};
      case TrainingOp::InputGrad:
        // The incoming dE/dZ is resident from the next layer's
        // backward step; dE/dI flows on-chip to the previous layer.
        return {z_fits ? 0.0 : z_bytes, w_bytes,
                i_fits ? 0.0 : i_bytes};
      case TrainingOp::WeightGrad:
        // Activations come back from the stash; dE/dZ is still
        // resident; dW is written once per batch.
        return {stash_on_chip ? 0.0 : i_bytes,
                z_fits ? 0.0 : z_bytes, w_bytes};
    }
    panic("bad op");
}

} // namespace

double
Accelerator::cachedBdcFootprint(const ModelInfo &model, TensorKind kind,
                                double progress) const
{
    std::string key = model.name + "/" + tensorLabel(kind) + "/" +
                      std::to_string(progress);
    {
        std::lock_guard<std::mutex> lock(bdcMutex_);
        auto it = bdcCache_.find(key);
        if (it != bdcCache_.end())
            return it->second;
    }
    // Analysis runs unlocked (it is deterministic per key, so a rare
    // duplicate computation inserts the same value).
    ValueProfile p = model.profile.of(kind).at(progress);
    TensorGenerator gen(p,
                        cfg_.seed ^ (static_cast<uint64_t>(kind) + 11));
    BaseDeltaCodec codec;
    double footprint = codec.analyze(gen.generate(8192)).totalFootprint();
    std::lock_guard<std::mutex> lock(bdcMutex_);
    bdcCache_.emplace(std::move(key), footprint);
    return footprint;
}

void
Accelerator::warmBdcCache(const ModelInfo &model, double progress) const
{
    if (!cfg_.useBdc)
        return;
    for (TensorKind kind : {TensorKind::Activation, TensorKind::Weight,
                            TensorKind::Gradient})
        cachedBdcFootprint(model, kind, progress);
}

LayerOpReport
Accelerator::runLayerOp(const ModelInfo &model, const LayerShape &layer,
                        TrainingOp op, double progress,
                        const SlabSupply *supply) const
{
    const int lanes = cfg_.tile.pe.lanes;
    LayerOpReport r;
    r.layerName = layer.name;
    r.op = op;
    r.macs = layer.macs();

    // Work in tile steps: M maps to tile columns, N to rows, K to
    // lanes (padding fractional tiles). Each machine tiles the layer
    // with its own geometry.
    uint64_t m_tiles = divCeil<uint64_t>(layer.m, cfg_.tile.cols);
    uint64_t n_tiles = divCeil<uint64_t>(layer.n, cfg_.tile.rows);
    uint64_t k_tiles = divCeil<uint64_t>(layer.k, lanes);
    r.tileSteps = m_tiles * n_tiles * k_tiles;
    uint64_t base_steps =
        divCeil<uint64_t>(layer.m, cfg_.baselineTile.cols) *
        divCeil<uint64_t>(layer.n, cfg_.baselineTile.rows) *
        divCeil<uint64_t>(layer.k, cfg_.baselineTile.pe.lanes);

    // Cycle-accurate sample of the FPRaker tile on this workload.
    PhaseRunConfig prc;
    prc.tile = cfg_.tile;
    prc.sampleSteps = cfg_.sampleSteps;
    prc.seed = cfg_.seed;
    prc.autoSerialSide = cfg_.autoSerialSide;
    prc.engine = engine_;
    prc.pool = &tilePool_;
    prc.supply = supply;
    prc.memoize = cfg_.memoize;
    PhaseRunResult sample =
        runPhaseSample(model, layer, op, progress, prc);
    r.serialSide = sample.serialSide;
    r.avgCyclesPerStep = sample.avgCyclesPerStep;
    r.sampleStats = sample.peStats;

    // Compute time: steps are spread evenly across tiles.
    double fpr_steps_per_tile = static_cast<double>(r.tileSteps) /
                                static_cast<double>(cfg_.fprTiles);
    double base_steps_per_tile = static_cast<double>(base_steps) /
                                 static_cast<double>(cfg_.baselineTiles);
    r.fprComputeCycles = fpr_steps_per_tile * sample.avgCyclesPerStep;
    r.baseComputeCycles = base_steps_per_tile;

    // Off-chip traffic and memory time (double-buffered overlap).
    double act_footprint = 0.0;
    for (const auto &l : model.layers)
        act_footprint += 2.0 * static_cast<double>(l.m) * l.n;
    bool stash_on_chip =
        act_footprint <= static_cast<double>(cfg_.actStashBytes);
    OpTraffic traffic =
        trafficBytes(layer, op, cfg_.convWeightBatch, stash_on_chip,
                     cfg_.gbTransientBytes);
    r.trafficBytes = traffic.total();
    if (cfg_.useBdc) {
        OpOperands operands = operandsOf(op);
        TensorKind out_kind =
            op == TrainingOp::Forward ? TensorKind::Activation
            : op == TrainingOp::InputGrad ? TensorKind::Gradient
                                          : TensorKind::Weight;
        r.trafficBytesCompressed =
            traffic.first *
                cachedBdcFootprint(model, operands.first, progress) +
            traffic.second *
                cachedBdcFootprint(model, operands.second, progress) +
            traffic.out * cachedBdcFootprint(model, out_kind, progress);
    } else {
        r.trafficBytesCompressed = r.trafficBytes;
    }

    DramModel dram(cfg_.dram);
    r.fprMemCycles = static_cast<double>(
        dram.cyclesForStream(
            static_cast<uint64_t>(r.trafficBytesCompressed)));
    r.baseMemCycles = static_cast<double>(
        dram.cyclesForStream(static_cast<uint64_t>(r.trafficBytes)));
    r.fprCycles = std::max(r.fprComputeCycles, r.fprMemCycles);
    r.baseCycles = std::max(r.baseComputeCycles, r.baseMemCycles);

    // Scale the sampled PE activity to the whole layer.
    double scale = sample.steps > 0
                       ? static_cast<double>(r.tileSteps) /
                             static_cast<double>(sample.steps)
                       : 0.0;
    r.activity = ScaledPeActivity::fromStats(sample.peStats, scale);

    // Energy. Core energy uses compute cycles (tiles idle during
    // memory-bound stretches are mostly clock-gated).
    r.fprEnergy.core = energy_.fprCoreEnergy(
        r.fprComputeCycles, cfg_.fprTiles, sample.peStats);

    BaselinePeStats base_stats;
    base_stats.cycles = static_cast<uint64_t>(r.baseComputeCycles);
    base_stats.macs =
        base_steps * static_cast<uint64_t>(cfg_.baselineTile.rows *
                                           cfg_.baselineTile.cols *
                                           cfg_.baselineTile.pe.lanes);
    double sparsity_first = sample.serialStats.valueSparsity();
    double sparsity_second = sample.parallelStats.valueSparsity();
    double p_ineffectual =
        1.0 - (1.0 - sparsity_first) * (1.0 - sparsity_second);
    base_stats.ineffectualMacs = static_cast<uint64_t>(
        p_ineffectual * static_cast<double>(base_stats.macs));
    r.baseEnergy.core.computePj = energy_.baseCoreEnergy(
        r.baseComputeCycles, cfg_.baselineTiles, base_stats);

    // On-chip SRAM traffic is workload-determined and equal for both
    // machines: operand reads per step (amortized over the steps the
    // per-tile scratchpads serve) plus the result writeback.
    double sram_bytes =
        static_cast<double>(r.tileSteps) *
            (cfg_.tile.cols + cfg_.tile.rows) * lanes * 2.0 /
            static_cast<double>(std::max(1, cfg_.scratchpadReuse)) +
        traffic.out;
    r.fprEnergy.sramPj = energy_.sramEnergyPj(sram_bytes);
    r.baseEnergy.sramPj = r.fprEnergy.sramPj;

    r.fprEnergy.dramPj = energy_.dramEnergyPj(r.trafficBytesCompressed);
    r.baseEnergy.dramPj = energy_.dramEnergyPj(r.trafficBytes);
    return r;
}

std::vector<LayerOpUnit>
Accelerator::modelUnits(const ModelInfo &model)
{
    std::vector<LayerOpUnit> units;
    units.reserve(model.layers.size() * 3);
    for (const LayerShape &layer : model.layers)
        for (TrainingOp op : {TrainingOp::Forward, TrainingOp::InputGrad,
                              TrainingOp::WeightGrad})
            units.push_back(LayerOpUnit{&layer, op});
    return units;
}

ModelRunReport
Accelerator::reduceModel(const ModelInfo &model, double progress,
                         std::vector<LayerOpReport> results)
{
    ModelRunReport report;
    report.model = model.name;
    report.progress = progress;
    report.ops.reserve(results.size());
    for (LayerOpReport &r : results) {
        report.fprCycles += r.fprCycles;
        report.baseCycles += r.baseCycles;
        report.fprEnergy.merge(r.fprEnergy);
        report.baseEnergy.merge(r.baseEnergy);
        report.activity.merge(r.activity);
        report.ops.push_back(std::move(r));
    }
    return report;
}

ModelRunReport
Accelerator::runModel(const ModelInfo &model, double progress) const
{
    // The (layer, op) units are independent: each seeds its own value
    // streams and owns fresh tiles. Shard them across the engine, then
    // reduce in layer/op order so the report is bit-identical for any
    // thread count.
    std::vector<LayerOpUnit> units = modelUnits(model);

    // Pre-warm the BDC footprint cache so the parallel phase only
    // reads it.
    warmBdcCache(model, progress);

    std::vector<LayerOpReport> results(units.size());
    engine_->parallelFor(units.size(), [&](size_t i) {
        results[i] =
            runLayerOp(model, *units[i].layer, units[i].op, progress);
    });
    return reduceModel(model, progress, std::move(results));
}

} // namespace fpraker
