/**
 * @file
 * Whole-accelerator model: iso-compute-area FPRaker (36 tiles) vs the
 * bit-parallel baseline (8 tiles), with the shared memory system.
 *
 * For each (layer, training-op) the model:
 *  1. sizes the work in tile steps (M/N/K tiled 8x8x8),
 *  2. samples the FPRaker tile cycle-accurately on profile-shaped
 *     values (see phase_runner) to get cycles/step and stall taxonomy,
 *  3. computes off-chip traffic (operands in, result out), optionally
 *     through exponent base-delta compression,
 *  4. combines compute and memory time assuming double-buffered
 *     overlap (cycles = max(compute, memory)), and
 *  5. rolls up energy via the Table III-calibrated energy model.
 */

#ifndef FPRAKER_ACCEL_ACCELERATOR_H
#define FPRAKER_ACCEL_ACCELERATOR_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "accel/config.h"
#include "accel/phase_runner.h"
#include "energy/energy_model.h"
#include "sim/sim_engine.h"
#include "sim/tile_pool.h"

namespace fpraker {

/** PE activity scaled from a sample to the full layer. */
struct ScaledPeActivity
{
    double laneUseful = 0, laneNoTerm = 0, laneShiftRange = 0;
    double laneInterPe = 0, laneExponent = 0;
    double termsProcessed = 0, termsZeroSkipped = 0, termsObSkipped = 0;
    double macs = 0;

    double
    laneCycles() const
    {
        return laneUseful + laneNoTerm + laneShiftRange + laneInterPe +
               laneExponent;
    }

    void merge(const ScaledPeActivity &o);
    static ScaledPeActivity fromStats(const PeStats &s, double scale);
};

/** Report for one (layer, op). */
struct LayerOpReport
{
    std::string layerName;
    TrainingOp op = TrainingOp::Forward;
    int64_t macs = 0;
    uint64_t tileSteps = 0; //!< Total 8x8x8 steps for the layer.

    double fprComputeCycles = 0, fprMemCycles = 0, fprCycles = 0;
    double baseComputeCycles = 0, baseMemCycles = 0, baseCycles = 0;

    TensorKind serialSide = TensorKind::Activation;
    double avgCyclesPerStep = 1.0;

    double trafficBytes = 0;           //!< Raw off-chip bytes.
    double trafficBytesCompressed = 0; //!< After BDC (if enabled).

    ScaledPeActivity activity; //!< Scaled to the full layer.
    PeStats sampleStats;       //!< Raw sample statistics.

    EnergyReport fprEnergy;
    EnergyReport baseEnergy;

    double
    speedup() const
    {
        return fprCycles > 0 ? baseCycles / fprCycles : 1.0;
    }
};

/** Whole-model report. */
struct ModelRunReport
{
    std::string model;
    double progress = 0.5;
    std::vector<LayerOpReport> ops;

    double fprCycles = 0, baseCycles = 0;
    EnergyReport fprEnergy, baseEnergy;
    ScaledPeActivity activity;

    double
    speedup() const
    {
        return fprCycles > 0 ? baseCycles / fprCycles : 1.0;
    }

    /** Speedup restricted to one training op. */
    double speedupForOp(TrainingOp op) const;

    /** Core-only energy-efficiency ratio (baseline / FPRaker). */
    double
    coreEnergyEfficiency() const
    {
        double f = fprEnergy.core.totalPj();
        return f > 0 ? baseEnergy.core.totalPj() / f : 1.0;
    }

    /** Total energy-efficiency ratio including memory. */
    double
    totalEnergyEfficiency() const
    {
        double f = fprEnergy.totalPj();
        return f > 0 ? baseEnergy.totalPj() / f : 1.0;
    }
};

/** One independent (layer, op) unit of a model run. */
struct LayerOpUnit
{
    const LayerShape *layer;
    TrainingOp op;
};

/** The iso-compute-area accelerator pair. */
class Accelerator
{
  public:
    explicit Accelerator(AcceleratorConfig cfg = {},
                         EnergyModelConfig energy_cfg = {});

    /**
     * Borrow @p shared as the simulation engine instead of owning one
     * (the SweepRunner binds every accelerator of a sweep to a single
     * engine this way; cfg.threads is ignored). @p shared must outlive
     * the accelerator.
     */
    Accelerator(AcceleratorConfig cfg, EnergyModelConfig energy_cfg,
                SimEngine *shared);

    /**
     * Simulate one (layer, op). @p supply optionally overrides the
     * operand source of the sampled phase (trace-backed workload
     * ingestion, src/workload/supply.h); null synthesizes from the
     * model's value profiles as always.
     */
    LayerOpReport runLayerOp(const ModelInfo &model,
                             const LayerShape &layer, TrainingOp op,
                             double progress,
                             const SlabSupply *supply = nullptr) const;

    /**
     * Simulate a whole model (all layers, all three ops). The
     * independent (layer, op) units shard across the engine; reports
     * are reduced in layer/op order, so the result is bit-identical
     * for any thread count.
     */
    ModelRunReport runModel(const ModelInfo &model,
                            double progress = 0.5) const;

    /**
     * The (layer, op) units of a model run, in report order. A sweep
     * scheduler fans these out itself (across many models/configs at
     * once) and rebuilds each report with reduceModel.
     */
    static std::vector<LayerOpUnit> modelUnits(const ModelInfo &model);

    /**
     * Reduce per-unit reports — results[i] from runLayerOp on
     * modelUnits(model)[i] — into the whole-model report, in unit
     * order (the serial reduction that keeps runs bit-identical).
     */
    static ModelRunReport reduceModel(const ModelInfo &model,
                                      double progress,
                                      std::vector<LayerOpReport> results);

    /**
     * Pre-warm the BDC footprint cache for every tensor kind a model
     * run at @p progress will touch, so a subsequent parallel fan-out
     * only reads it. runModel does this itself; external schedulers
     * must call it before fanning out runLayerOp units.
     */
    void warmBdcCache(const ModelInfo &model, double progress) const;

    const AcceleratorConfig &config() const { return cfg_; }
    const EnergyModel &energyModel() const { return energy_; }

  private:
    double cachedBdcFootprint(const ModelInfo &model, TensorKind kind,
                              double progress) const;

    AcceleratorConfig cfg_;
    EnergyModel energy_;
    std::unique_ptr<SimEngine> ownedEngine_;
    SimEngine *engine_ = nullptr; //!< ownedEngine_.get() or borrowed.
    /** Shared per-burst scratch pool for this config's phase samples
     *  (thread-safe; reuse is bit-identical to fresh construction). */
    mutable TilePool tilePool_;
    mutable std::mutex bdcMutex_;
    mutable std::map<std::string, double> bdcCache_;
};

} // namespace fpraker

#endif // FPRAKER_ACCEL_ACCELERATOR_H
