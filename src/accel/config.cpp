#include "accel/config.h"

namespace fpraker {

AcceleratorConfig
AcceleratorConfig::paperDefault()
{
    AcceleratorConfig cfg;
    cfg.tile = TileConfig{};           // 8x8 PEs, 8 lanes, depth-1 buffers
    cfg.fprTiles = 36;                 // Table II
    cfg.baselineTiles = 8;             // Table II (4096 MACs/cycle)
    cfg.globalBuffer = GlobalBufferConfig{}; // 4MB x 9 banks
    cfg.dram = DramConfig{};           // 4-channel LPDDR4-3200 @ 600 MHz
    cfg.useBdc = true;
    return cfg;
}

} // namespace fpraker
