/**
 * @file
 * Sampled cycle-level simulation of one layer-op on an FPRaker tile.
 *
 * The paper samples one random mini-batch per epoch and replays it in a
 * custom simulator; we sample a bounded number of tile steps per
 * (layer, op, progress) from the model's value profiles, simulate them
 * cycle-accurately on one tile, and scale cycles to the full layer
 * (all tiles run the same statistical workload, so per-step averages
 * transfer).
 *
 * The serial (term-processed) operand is chosen per layer and op — the
 * paper lets the accelerator "target those tensors that have more
 * sparsity depending on the layer and the pass" — by picking the
 * operand with the lower expected term density.
 *
 * Sampling is sharded at the output-block (burst) grain: the
 * accumulators reset between blocks, so each burst is an independent
 * unit that seeds its own RNG substreams (substreamSeed(base, burst) —
 * a function of the burst index, never of the executing worker),
 * generates its own operand slabs, and runs a private tile. When the
 * config carries a SimEngine the bursts shard across it (and the tile
 * shards its columns for the serial caller), bit-identical to the
 * serial walk at any thread count.
 */

#ifndef FPRAKER_ACCEL_PHASE_RUNNER_H
#define FPRAKER_ACCEL_PHASE_RUNNER_H

#include <algorithm>

#include "sim/sim_engine.h"
#include "sim/sim_memo.h"
#include "sim/tile_pool.h"
#include "tile/tile.h"
#include "trace/model_zoo.h"
#include "trace/tensor_gen.h"

namespace fpraker {

/** Parameters of a sampled phase run. */
struct PhaseRunConfig
{
    TileConfig tile;
    int sampleSteps = 192;    //!< Tile steps to simulate.
    int stepsPerOutput = 32;  //!< K fragments before accumulator reset.
    uint64_t seed = 1;
    bool autoSerialSide = true; //!< Pick the sparser operand as serial.
    SimEngine *engine = nullptr; //!< Optional column-sharding executor.
    /**
     * Optional scratch pool (its config must equal @p tile): bursts
     * borrow pooled tile/slab scratch instead of constructing fresh —
     * bit-identical, just allocation-free. Null constructs per burst.
     */
    TilePool *pool = nullptr;
    /**
     * Optional operand source. Null uses the generator-backed supply
     * derived from the model profiles (the historical path); a
     * workload trace passes its TraceSlabSupply here. The supply must
     * honor the burst/window geometry of planPhaseSample(), and
     * results stay bit-identical at any thread count as long as the
     * supply is a pure function of the burst index.
     */
    const SlabSupply *supply = nullptr;
    /**
     * Content-addressed memoization (sim/sim_memo.h). Null uses the
     * process-wide SimMemo::global() (which FPRAKER_MEMO sizes or
     * disables); tests install private instances. Two grains apply:
     * generator-backed phases cache their whole result keyed on
     * (config digest, plan, profiles, seed), and every phase caches
     * per-burst (cycles, stats) keyed on (config digest, operand
     * window bytes). Both are exact by construction — cached values
     * are byte copies of the identical computation — so memo-on and
     * memo-off runs are bit-identical.
     */
    SimMemo *memo = nullptr;
    /** False forces the unmemoized path regardless of @ref memo. */
    bool memoize = true;
};

/**
 * The sampling geometry of one (layer, op, progress) phase: which
 * operand is serialized, the value profiles in play, the RNG base
 * seed, and the burst/window sizes. runPhaseSample() derives this
 * plan internally; trace capture (workload/supply.h) uses the same
 * plan to record byte-identical streams.
 */
struct PhasePlan
{
    TensorKind serialSide = TensorKind::Activation;
    TensorKind parallelSide = TensorKind::Weight;
    ValueProfile serialProfile;
    ValueProfile parallelProfile;
    uint64_t baseSeed = 0;
    int sampleSteps = 0;
    int stepsPerOutput = 0; //!< Effective (capped at the K traversal).
    size_t bursts = 0;
    size_t aLen = 0; //!< Serial-operand values per tile step.
    size_t bLen = 0; //!< Parallel-operand values per tile step.

    /** Tile steps in burst @p bi (the last burst may be short). */
    size_t
    burstSteps(size_t bi) const
    {
        size_t first = bi * static_cast<size_t>(stepsPerOutput);
        return std::min<size_t>(
            static_cast<size_t>(sampleSteps) - first,
            static_cast<size_t>(stepsPerOutput));
    }
};

/** Derive the sampling plan of one (layer, op) phase under @p cfg. */
PhasePlan planPhaseSample(const ModelInfo &model, const LayerShape &layer,
                          TrainingOp op, double progress,
                          const PhaseRunConfig &cfg);

/** Result of a sampled phase run. */
struct PhaseRunResult
{
    double avgCyclesPerStep = 1.0;
    PeStats peStats;            //!< Aggregated over the sampled tile.
    TensorKind serialSide = TensorKind::Activation;
    TensorStats serialStats;    //!< Measured stats of the serial stream.
    TensorStats parallelStats;
    uint64_t steps = 0;
    // Memoization accounting (provenance only — never fingerprinted):
    // lookups that hit/missed at either grain during this run.
    uint64_t memoHits = 0;
    uint64_t memoMisses = 0;
};

/** Run one sampled (layer, op) phase on a fresh tile. */
PhaseRunResult runPhaseSample(const ModelInfo &model,
                              const LayerShape &layer, TrainingOp op,
                              double progress, const PhaseRunConfig &cfg);

/**
 * Pick the serial operand for (model, op, progress): the tensor with
 * the lower expected term count per value.
 */
TensorKind chooseSerialSide(const ModelInfo &model, TrainingOp op,
                            double progress);

} // namespace fpraker

#endif // FPRAKER_ACCEL_PHASE_RUNNER_H
