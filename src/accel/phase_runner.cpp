#include "accel/phase_runner.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <string>

#include "common/logging.h"

namespace fpraker {

TensorKind
chooseSerialSide(const ModelInfo &model, TrainingOp op, double progress)
{
    OpOperands operands = operandsOf(op);
    ValueProfile a = model.profile.of(operands.first).at(progress);
    ValueProfile b = model.profile.of(operands.second).at(progress);
    return a.expectedTermsPerValue() <= b.expectedTermsPerValue()
               ? operands.first
               : operands.second;
}

PhasePlan
planPhaseSample(const ModelInfo &model, const LayerShape &layer,
                TrainingOp op, double progress, const PhaseRunConfig &cfg)
{
    panic_if(cfg.sampleSteps < 1, "need at least one sample step");

    PhasePlan plan;
    OpOperands operands = operandsOf(op);
    plan.serialSide = cfg.autoSerialSide
                          ? chooseSerialSide(model, op, progress)
                          : operands.first;
    plan.parallelSide = plan.serialSide == operands.first
                            ? operands.second
                            : operands.first;
    plan.serialProfile =
        model.profile.of(plan.serialSide).at(progress);
    plan.parallelProfile =
        model.profile.of(plan.parallelSide).at(progress);

    // Seed streams per (layer, op) so repeated runs are reproducible
    // but distinct layers see distinct values.
    plan.baseSeed = cfg.seed * 1000003 +
                    std::hash<std::string>{}(layer.name) +
                    static_cast<uint64_t>(op) * 97;

    const int lanes = cfg.tile.pe.lanes;
    plan.aLen = static_cast<size_t>(cfg.tile.cols) * lanes;
    plan.bLen = static_cast<size_t>(cfg.tile.rows) * lanes;
    plan.sampleSteps = cfg.sampleSteps;

    // Cap the accumulation depth at the layer's actual K traversal.
    plan.stepsPerOutput = std::max<int>(
        1, std::min<int64_t>(cfg.stepsPerOutput,
                             (layer.k + lanes - 1) / lanes));
    plan.bursts = (static_cast<size_t>(cfg.sampleSteps) +
                   static_cast<size_t>(plan.stepsPerOutput) - 1) /
                  static_cast<size_t>(plan.stepsPerOutput);
    return plan;
}

PhaseRunResult
runPhaseSample(const ModelInfo &model, const LayerShape &layer,
               TrainingOp op, double progress, const PhaseRunConfig &cfg)
{
    const PhasePlan plan =
        planPhaseSample(model, layer, op, progress, cfg);
    const size_t a_len = plan.aLen;
    const size_t b_len = plan.bLen;

    // Operand streams arrive through the SlabSupply seam: the default
    // generator-backed supply synthesizes each burst's windows from
    // the profile substreams (exactly the historical per-burst
    // generators), while a trace-backed supply replays recorded
    // streams. Either way the fill is a pure function of the burst
    // index, so sharding stays bit-identical.
    GeneratorSlabSupply generated(plan.serialProfile,
                                  plan.parallelProfile, plan.baseSeed);
    const SlabSupply &supply = cfg.supply ? *cfg.supply : generated;

    // A burst covers one output block (the accumulators reset between
    // blocks), which makes bursts fully independent simulation units:
    // each fills its own operand windows through the supply and runs a
    // private tile. Bursts therefore shard across the engine and
    // reduce in burst order, bit-identical to the serial walk at any
    // thread count.
    const size_t n_bursts = plan.bursts;

    struct BurstResult
    {
        uint64_t cycles = 0;
        PeStats peStats;
        TensorStats serialStats;
        TensorStats parallelStats;
    };
    std::vector<BurstResult> bursts(n_bursts);

    const bool shard_bursts =
        cfg.engine && cfg.engine->threads() > 1 && n_bursts > 1;
    // When the bursts themselves shard, the tile runs serially inside
    // each one — handing it the engine too would only over-post helper
    // tasks that find the column batch already drained.
    SimEngine *tile_engine = shard_bursts ? nullptr : cfg.engine;

    // Every field matters, not just geometry: a pool built for a
    // different encoding/threshold/accumulator would silently hand
    // out tiles that simulate the wrong machine.
    panic_if(cfg.pool && !(cfg.pool->config() == cfg.tile),
             "tile pool config does not match the phase config");

    auto run_burst = [&](size_t bi) {
        const size_t burst = plan.burstSteps(bi);

        // Borrow pooled scratch when a pool is configured; otherwise
        // construct the burst's working set locally. Pooled reuse is
        // bit-identical (Tile::resetForReuse) and allocation-free.
        std::optional<TilePool::Lease> lease;
        std::optional<TilePool::Scratch> local;
        if (cfg.pool)
            lease.emplace(cfg.pool->acquire());
        else
            local.emplace(cfg.tile);
        TilePool::Scratch &scratch = lease ? **lease : *local;
        scratch.a.resize(burst * a_len);
        scratch.b.resize(burst * b_len);
        scratch.views.resize(burst);

        // One window per operand covers the whole burst (the
        // generator's fill is chunk-invariant, so this matches the
        // historical per-step fills byte for byte).
        supply.fillSerial(bi, scratch.a.data(), burst * a_len);
        supply.fillParallel(bi, scratch.b.data(), burst * b_len);

        BurstResult &out = bursts[bi];
        for (size_t s = 0; s < burst; ++s) {
            BFloat16 *a = scratch.a.data() + s * a_len;
            BFloat16 *b = scratch.b.data() + s * b_len;
            out.serialStats.merge(
                measureTensor(a, a_len, cfg.tile.pe.encoding));
            out.parallelStats.merge(
                measureTensor(b, b_len, cfg.tile.pe.encoding));
            scratch.views[s] = TileStepView{a, b};
        }

        TileRunResult run = scratch.tile.run(scratch.views.data(),
                                             burst, tile_engine);
        out.cycles = run.cycles;
        out.peStats = scratch.tile.aggregateStats();
    };

    if (shard_bursts)
        cfg.engine->parallelFor(n_bursts, run_burst);
    else
        for (size_t bi = 0; bi < n_bursts; ++bi)
            run_burst(bi);

    PhaseRunResult result;
    result.serialSide = plan.serialSide;
    uint64_t total_cycles = 0;
    for (const BurstResult &b : bursts) {
        total_cycles += b.cycles;
        result.peStats.merge(b.peStats);
        result.serialStats.merge(b.serialStats);
        result.parallelStats.merge(b.parallelStats);
    }
    result.steps = static_cast<uint64_t>(cfg.sampleSteps);
    result.avgCyclesPerStep = static_cast<double>(total_cycles) /
                              static_cast<double>(cfg.sampleSteps);
    return result;
}

} // namespace fpraker
