#include "accel/phase_runner.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "common/fnv.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fpraker {

namespace {

FPRAKER_METRIC_COUNTER(g_phaseRuns, "phase.runs",
                       "phase samples simulated or memo-served");
FPRAKER_METRIC_COUNTER(g_phaseBursts, "phase.bursts",
                       "bursts executed (memo hits included)");
FPRAKER_METRIC_COUNTER(g_phaseSteps, "phase.steps",
                       "sample steps attributed to executed phases");
FPRAKER_METRIC_COUNTER(g_phaseCycles, "phase.sim_cycles",
                       "simulated tile cycles accumulated by phases");
FPRAKER_METRIC_HISTOGRAM(g_burstSeconds, "phase.burst_seconds",
                         "wall seconds one burst took (memo hits "
                         "included — they are the cheap mode)",
                         obs::Buckets::latency());

// ------------------------------------------------------- memo keying
//
// Every memo key starts with a digest over the full simulated-machine
// context (every TileConfig/PeConfig/AccumulatorConfig field plus the
// effective accumulation depth) and a grain tag, so entries from
// different machines or grains can never verify against each other.

constexpr uint64_t kBurstGrainTag = 0xb5b5b5b5'00000001ull;
constexpr uint64_t kPhaseGrainTag = 0xb5b5b5b5'00000002ull;

uint64_t
tileContextDigest(const TileConfig &t, int steps_per_output)
{
    Fnv64 h;
    h.add(static_cast<uint64_t>(t.pe.lanes));
    h.add(static_cast<uint64_t>(t.pe.maxDelta));
    h.add(static_cast<uint64_t>(t.pe.skipOutOfBounds ? 1 : 0));
    h.add(static_cast<uint64_t>(t.pe.obThreshold));
    h.add(static_cast<uint64_t>(t.pe.encoding));
    h.add(static_cast<uint64_t>(t.pe.acc.fracBits));
    h.add(static_cast<uint64_t>(t.pe.acc.intBits));
    h.add(static_cast<uint64_t>(t.pe.acc.chunkSize));
    h.add(static_cast<uint64_t>(t.pe.exponentFloor));
    h.add(static_cast<uint64_t>(t.rows));
    h.add(static_cast<uint64_t>(t.cols));
    h.add(static_cast<uint64_t>(t.bufferDepth));
    h.add(static_cast<uint64_t>(steps_per_output));
    return h.value();
}

void
appendU64(std::vector<unsigned char> &buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<unsigned char>(v >> (i * 8)));
}

void
appendDouble(std::vector<unsigned char> &buf, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(buf, bits);
}

void
appendProfile(std::vector<unsigned char> &buf, const ValueProfile &p)
{
    appendDouble(buf, p.sparsity);
    appendDouble(buf, p.zeroClusterLen);
    appendDouble(buf, p.expMu);
    appendDouble(buf, p.expSigma);
    appendDouble(buf, p.expCorr);
    appendU64(buf, static_cast<uint64_t>(p.mantissaBits));
    appendDouble(buf, p.bitDensity);
}

/** Cached burst payload — everything a phase run reads of a burst. */
struct BurstMemoValue
{
    uint64_t cycles = 0;
    PeStats peStats;
    TensorStats serialStats;
    TensorStats parallelStats;
};
static_assert(std::is_trivially_copyable_v<BurstMemoValue> &&
                  sizeof(BurstMemoValue) ==
                      (1 + 11 + 3 + 3) * sizeof(uint64_t),
              "BurstMemoValue must be a packed POD (memo byte copies)");

/** Cached whole-phase payload (generator-backed phases only). */
struct PhaseMemoValue
{
    double avgCyclesPerStep = 0.0;
    uint64_t steps = 0;
    uint64_t serialSide = 0;
    PeStats peStats;
    TensorStats serialStats;
    TensorStats parallelStats;
};
static_assert(std::is_trivially_copyable_v<PhaseMemoValue> &&
                  sizeof(PhaseMemoValue) ==
                      (3 + 11 + 3 + 3) * sizeof(uint64_t),
              "PhaseMemoValue must be a packed POD (memo byte copies)");

} // namespace

TensorKind
chooseSerialSide(const ModelInfo &model, TrainingOp op, double progress)
{
    OpOperands operands = operandsOf(op);
    ValueProfile a = model.profile.of(operands.first).at(progress);
    ValueProfile b = model.profile.of(operands.second).at(progress);
    return a.expectedTermsPerValue() <= b.expectedTermsPerValue()
               ? operands.first
               : operands.second;
}

PhasePlan
planPhaseSample(const ModelInfo &model, const LayerShape &layer,
                TrainingOp op, double progress, const PhaseRunConfig &cfg)
{
    panic_if(cfg.sampleSteps < 1, "need at least one sample step");

    PhasePlan plan;
    OpOperands operands = operandsOf(op);
    plan.serialSide = cfg.autoSerialSide
                          ? chooseSerialSide(model, op, progress)
                          : operands.first;
    plan.parallelSide = plan.serialSide == operands.first
                            ? operands.second
                            : operands.first;
    plan.serialProfile =
        model.profile.of(plan.serialSide).at(progress);
    plan.parallelProfile =
        model.profile.of(plan.parallelSide).at(progress);

    // Seed streams per (layer, op) so repeated runs are reproducible
    // but distinct layers see distinct values.
    plan.baseSeed = cfg.seed * 1000003 +
                    std::hash<std::string>{}(layer.name) +
                    static_cast<uint64_t>(op) * 97;

    const int lanes = cfg.tile.pe.lanes;
    plan.aLen = static_cast<size_t>(cfg.tile.cols) * lanes;
    plan.bLen = static_cast<size_t>(cfg.tile.rows) * lanes;
    plan.sampleSteps = cfg.sampleSteps;

    // Cap the accumulation depth at the layer's actual K traversal.
    plan.stepsPerOutput = std::max<int>(
        1, std::min<int64_t>(cfg.stepsPerOutput,
                             (layer.k + lanes - 1) / lanes));
    plan.bursts = (static_cast<size_t>(cfg.sampleSteps) +
                   static_cast<size_t>(plan.stepsPerOutput) - 1) /
                  static_cast<size_t>(plan.stepsPerOutput);
    return plan;
}

PhaseRunResult
runPhaseSample(const ModelInfo &model, const LayerShape &layer,
               TrainingOp op, double progress, const PhaseRunConfig &cfg)
{
    const PhasePlan plan =
        planPhaseSample(model, layer, op, progress, cfg);
    const size_t a_len = plan.aLen;
    const size_t b_len = plan.bLen;

    g_phaseRuns.add();
    obs::TraceSpan phaseSpan(
        "phase", obs::TraceCollector::instance().enabled()
                     ? layer.name + ":" + opLabel(op)
                     : std::string());

    SimMemo *memo =
        cfg.memoize ? (cfg.memo ? cfg.memo : SimMemo::global()) : nullptr;
    const uint64_t ctx_digest =
        memo ? tileContextDigest(cfg.tile, plan.stepsPerOutput) : 0;

    // Phase grain: a generator-backed phase is a pure function of the
    // machine context and the plan (profiles, seed, geometry) — its
    // operand streams are synthesized from exactly these inputs — so
    // the whole result memoizes without even generating the operands.
    // Trace-backed phases (cfg.supply) are covered by the burst grain
    // below instead: their content lives in the trace bytes.
    std::vector<unsigned char> phase_key;
    uint64_t phase_hash = 0;
    if (memo && !cfg.supply) {
        appendU64(phase_key, ctx_digest);
        appendU64(phase_key, kPhaseGrainTag);
        appendU64(phase_key, plan.baseSeed);
        appendU64(phase_key, static_cast<uint64_t>(plan.sampleSteps));
        appendU64(phase_key, static_cast<uint64_t>(plan.bursts));
        appendU64(phase_key, static_cast<uint64_t>(a_len));
        appendU64(phase_key, static_cast<uint64_t>(b_len));
        appendU64(phase_key, static_cast<uint64_t>(plan.serialSide));
        appendU64(phase_key, static_cast<uint64_t>(plan.parallelSide));
        appendProfile(phase_key, plan.serialProfile);
        appendProfile(phase_key, plan.parallelProfile);
        Fnv64 h;
        h.addBytes(phase_key.data(), phase_key.size());
        phase_hash = h.value();

        PhaseMemoValue v;
        if (memo->lookup(phase_hash, phase_key.data(), phase_key.size(),
                         &v, sizeof(v))) {
            PhaseRunResult result;
            result.avgCyclesPerStep = v.avgCyclesPerStep;
            result.steps = v.steps;
            result.serialSide = static_cast<TensorKind>(v.serialSide);
            result.peStats = v.peStats;
            result.serialStats = v.serialStats;
            result.parallelStats = v.parallelStats;
            result.memoHits = 1;
            return result;
        }
    }

    // Operand streams arrive through the SlabSupply seam: the default
    // generator-backed supply synthesizes each burst's windows from
    // the profile substreams (exactly the historical per-burst
    // generators), while a trace-backed supply replays recorded
    // streams. Either way the fill is a pure function of the burst
    // index, so sharding stays bit-identical.
    GeneratorSlabSupply generated(plan.serialProfile,
                                  plan.parallelProfile, plan.baseSeed);
    const SlabSupply &supply = cfg.supply ? *cfg.supply : generated;

    // A burst covers one output block (the accumulators reset between
    // blocks), which makes bursts fully independent simulation units:
    // each fills its own operand windows through the supply and runs a
    // private tile. Bursts therefore shard across the engine and
    // reduce in burst order, bit-identical to the serial walk at any
    // thread count.
    const size_t n_bursts = plan.bursts;

    struct BurstResult
    {
        uint64_t cycles = 0;
        PeStats peStats;
        TensorStats serialStats;
        TensorStats parallelStats;
        bool memoHit = false;
    };
    std::vector<BurstResult> bursts(n_bursts);

    const bool shard_bursts =
        cfg.engine && cfg.engine->threads() > 1 && n_bursts > 1;
    // When the bursts themselves shard, the tile runs serially inside
    // each one — handing it the engine too would only over-post helper
    // tasks that find the column batch already drained.
    SimEngine *tile_engine = shard_bursts ? nullptr : cfg.engine;

    // Every field matters, not just geometry: a pool built for a
    // different encoding/threshold/accumulator would silently hand
    // out tiles that simulate the wrong machine.
    panic_if(cfg.pool && !(cfg.pool->config() == cfg.tile),
             "tile pool config does not match the phase config");

    auto run_burst = [&](size_t bi) {
        const size_t burst = plan.burstSteps(bi);
        const int64_t burst_t0 = now_ns();
        obs::TraceSpan burstSpan(
            "burst", obs::TraceCollector::instance().enabled()
                         ? layer.name + ":b" + std::to_string(bi)
                         : std::string());

        // Borrow pooled scratch when a pool is configured; otherwise
        // construct the burst's working set locally. Pooled reuse is
        // bit-identical (Tile::resetForReuse) and allocation-free.
        std::optional<TilePool::Lease> lease;
        std::optional<TilePool::Scratch> local;
        if (cfg.pool)
            lease.emplace(cfg.pool->acquire());
        else
            local.emplace(cfg.tile);
        TilePool::Scratch &scratch = lease ? **lease : *local;
        scratch.a.resize(burst * a_len);
        scratch.b.resize(burst * b_len);
        scratch.views.resize(burst);

        // One window per operand covers the whole burst (the
        // generator's fill is chunk-invariant, so this matches the
        // historical per-step fills byte for byte).
        supply.fillSerial(bi, scratch.a.data(), burst * a_len);
        supply.fillParallel(bi, scratch.b.data(), burst * b_len);

        BurstResult &out = bursts[bi];

        // Burst grain: a burst is a pure function of the machine
        // context and its operand window bytes (accumulators reset
        // between bursts and phase runs never read the tile's float
        // outputs), so identical content — im2col-overlapping conv
        // windows, re-sampled phases — skips the tile entirely. The
        // fill above still runs: the key IS the operand bytes. A hit
        // copies bytes a prior identical computation produced, so
        // results stay bit-identical; only WHICH bursts hit can vary
        // with thread interleaving, which is why hit counts are
        // provenance, never fingerprint.
        thread_local std::vector<unsigned char> key_buf;
        uint64_t burst_hash = 0;
        if (memo) {
            key_buf.clear();
            appendU64(key_buf, ctx_digest);
            appendU64(key_buf, kBurstGrainTag);
            appendU64(key_buf, static_cast<uint64_t>(burst));
            appendU64(key_buf, static_cast<uint64_t>(a_len));
            appendU64(key_buf, static_cast<uint64_t>(b_len));
            const size_t header = key_buf.size();
            key_buf.resize(header +
                           (burst * a_len + burst * b_len) *
                               sizeof(BFloat16));
            std::memcpy(key_buf.data() + header, scratch.a.data(),
                        burst * a_len * sizeof(BFloat16));
            std::memcpy(key_buf.data() + header +
                            burst * a_len * sizeof(BFloat16),
                        scratch.b.data(),
                        burst * b_len * sizeof(BFloat16));
            Fnv64 h;
            h.addBytes(key_buf.data(), key_buf.size());
            burst_hash = h.value();

            BurstMemoValue v;
            if (memo->lookup(burst_hash, key_buf.data(),
                             key_buf.size(), &v, sizeof(v))) {
                out.cycles = v.cycles;
                out.peStats = v.peStats;
                out.serialStats = v.serialStats;
                out.parallelStats = v.parallelStats;
                out.memoHit = true;
                g_phaseBursts.add();
                g_burstSeconds.observe(
                    static_cast<double>(now_ns() - burst_t0) * 1e-9);
                return;
            }
        }

        for (size_t s = 0; s < burst; ++s) {
            BFloat16 *a = scratch.a.data() + s * a_len;
            BFloat16 *b = scratch.b.data() + s * b_len;
            out.serialStats.merge(
                measureTensor(a, a_len, cfg.tile.pe.encoding));
            out.parallelStats.merge(
                measureTensor(b, b_len, cfg.tile.pe.encoding));
            scratch.views[s] = TileStepView{a, b};
        }

        TileRunResult run = scratch.tile.run(scratch.views.data(),
                                             burst, tile_engine);
        out.cycles = run.cycles;
        out.peStats = scratch.tile.aggregateStats();

        if (memo) {
            BurstMemoValue v;
            v.cycles = out.cycles;
            v.peStats = out.peStats;
            v.serialStats = out.serialStats;
            v.parallelStats = out.parallelStats;
            memo->insert(burst_hash, key_buf.data(), key_buf.size(),
                         &v, sizeof(v));
        }
        g_phaseBursts.add();
        g_burstSeconds.observe(
            static_cast<double>(now_ns() - burst_t0) * 1e-9);
    };

    if (shard_bursts)
        cfg.engine->parallelFor(n_bursts, run_burst);
    else
        for (size_t bi = 0; bi < n_bursts; ++bi)
            run_burst(bi);

    PhaseRunResult result;
    result.serialSide = plan.serialSide;
    uint64_t total_cycles = 0;
    for (const BurstResult &b : bursts) {
        total_cycles += b.cycles;
        result.peStats.merge(b.peStats);
        result.serialStats.merge(b.serialStats);
        result.parallelStats.merge(b.parallelStats);
        if (b.memoHit)
            result.memoHits += 1;
        else if (memo)
            result.memoMisses += 1;
    }
    result.steps = static_cast<uint64_t>(cfg.sampleSteps);
    result.avgCyclesPerStep = static_cast<double>(total_cycles) /
                              static_cast<double>(cfg.sampleSteps);
    g_phaseSteps.add(result.steps);
    g_phaseCycles.add(total_cycles);

    if (!phase_key.empty()) {
        // The phase-grain lookup above missed; cache the whole result
        // so a later identical (config, plan, seed, profiles) phase —
        // another sweep job, another rep — skips even operand
        // generation.
        result.memoMisses += 1;
        PhaseMemoValue v;
        v.avgCyclesPerStep = result.avgCyclesPerStep;
        v.steps = result.steps;
        v.serialSide = static_cast<uint64_t>(result.serialSide);
        v.peStats = result.peStats;
        v.serialStats = result.serialStats;
        v.parallelStats = result.parallelStats;
        memo->insert(phase_hash, phase_key.data(), phase_key.size(),
                     &v, sizeof(v));
    }
    return result;
}

} // namespace fpraker
