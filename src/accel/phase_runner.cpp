#include "accel/phase_runner.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <string>

#include "common/logging.h"
#include "trace/rng_stream.h"

namespace fpraker {

TensorKind
chooseSerialSide(const ModelInfo &model, TrainingOp op, double progress)
{
    OpOperands operands = operandsOf(op);
    ValueProfile a = model.profile.of(operands.first).at(progress);
    ValueProfile b = model.profile.of(operands.second).at(progress);
    return a.expectedTermsPerValue() <= b.expectedTermsPerValue()
               ? operands.first
               : operands.second;
}

PhaseRunResult
runPhaseSample(const ModelInfo &model, const LayerShape &layer,
               TrainingOp op, double progress, const PhaseRunConfig &cfg)
{
    panic_if(cfg.sampleSteps < 1, "need at least one sample step");

    OpOperands operands = operandsOf(op);
    TensorKind serial = cfg.autoSerialSide
                            ? chooseSerialSide(model, op, progress)
                            : operands.first;
    TensorKind parallel = serial == operands.first ? operands.second
                                                   : operands.first;

    ValueProfile serial_profile = model.profile.of(serial).at(progress);
    ValueProfile parallel_profile =
        model.profile.of(parallel).at(progress);

    // Seed streams per (layer, op) so repeated runs are reproducible
    // but distinct layers see distinct values.
    uint64_t base_seed = cfg.seed * 1000003 +
                         std::hash<std::string>{}(layer.name) +
                         static_cast<uint64_t>(op) * 97;

    const int lanes = cfg.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(cfg.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(cfg.tile.rows) * lanes;

    // Cap the accumulation depth at the layer's actual K traversal.
    int steps_per_output = std::max<int>(
        1, std::min<int64_t>(cfg.stepsPerOutput,
                             (layer.k + lanes - 1) / lanes));

    // A burst covers one output block (the accumulators reset between
    // blocks), which makes bursts fully independent simulation units:
    // each seeds its own RNG substreams — a function of the burst
    // index, never of the executing worker — generates its own operand
    // slabs, and runs a private tile. Bursts therefore shard across
    // the engine and reduce in burst order, bit-identical to the
    // serial walk at any thread count.
    const size_t n_bursts =
        (static_cast<size_t>(cfg.sampleSteps) +
         static_cast<size_t>(steps_per_output) - 1) /
        static_cast<size_t>(steps_per_output);

    struct BurstResult
    {
        uint64_t cycles = 0;
        PeStats peStats;
        TensorStats serialStats;
        TensorStats parallelStats;
    };
    std::vector<BurstResult> bursts(n_bursts);

    const bool shard_bursts =
        cfg.engine && cfg.engine->threads() > 1 && n_bursts > 1;
    // When the bursts themselves shard, the tile runs serially inside
    // each one — handing it the engine too would only over-post helper
    // tasks that find the column batch already drained.
    SimEngine *tile_engine = shard_bursts ? nullptr : cfg.engine;

    // Every field matters, not just geometry: a pool built for a
    // different encoding/threshold/accumulator would silently hand
    // out tiles that simulate the wrong machine.
    panic_if(cfg.pool && !(cfg.pool->config() == cfg.tile),
             "tile pool config does not match the phase config");

    auto run_burst = [&](size_t bi) {
        const int first = static_cast<int>(bi) * steps_per_output;
        const size_t burst = static_cast<size_t>(
            std::min(cfg.sampleSteps - first, steps_per_output));
        TensorGenerator serial_gen(serial_profile,
                                   substreamSeed(base_seed, 2 * bi));
        TensorGenerator parallel_gen(
            parallel_profile, substreamSeed(base_seed, 2 * bi + 1));

        // Borrow pooled scratch when a pool is configured; otherwise
        // construct the burst's working set locally. Pooled reuse is
        // bit-identical (Tile::resetForReuse) and allocation-free.
        std::optional<TilePool::Lease> lease;
        std::optional<TilePool::Scratch> local;
        if (cfg.pool)
            lease.emplace(cfg.pool->acquire());
        else
            local.emplace(cfg.tile);
        TilePool::Scratch &scratch = lease ? **lease : *local;
        scratch.a.resize(burst * a_len);
        scratch.b.resize(burst * b_len);
        scratch.views.resize(burst);

        BurstResult &out = bursts[bi];
        for (size_t s = 0; s < burst; ++s) {
            BFloat16 *a = scratch.a.data() + s * a_len;
            BFloat16 *b = scratch.b.data() + s * b_len;
            serial_gen.fill(a, a_len);
            parallel_gen.fill(b, b_len);
            out.serialStats.merge(
                measureTensor(a, a_len, cfg.tile.pe.encoding));
            out.parallelStats.merge(
                measureTensor(b, b_len, cfg.tile.pe.encoding));
            scratch.views[s] = TileStepView{a, b};
        }

        TileRunResult run = scratch.tile.run(scratch.views.data(),
                                             burst, tile_engine);
        out.cycles = run.cycles;
        out.peStats = scratch.tile.aggregateStats();
    };

    if (shard_bursts)
        cfg.engine->parallelFor(n_bursts, run_burst);
    else
        for (size_t bi = 0; bi < n_bursts; ++bi)
            run_burst(bi);

    PhaseRunResult result;
    result.serialSide = serial;
    uint64_t total_cycles = 0;
    for (const BurstResult &b : bursts) {
        total_cycles += b.cycles;
        result.peStats.merge(b.peStats);
        result.serialStats.merge(b.serialStats);
        result.parallelStats.merge(b.parallelStats);
    }
    result.steps = static_cast<uint64_t>(cfg.sampleSteps);
    result.avgCyclesPerStep = static_cast<double>(total_cycles) /
                              static_cast<double>(cfg.sampleSteps);
    return result;
}

} // namespace fpraker
