#include "accel/phase_runner.h"

#include <algorithm>
#include <functional>
#include <string>

#include "common/logging.h"

namespace fpraker {

TensorKind
chooseSerialSide(const ModelInfo &model, TrainingOp op, double progress)
{
    OpOperands operands = operandsOf(op);
    ValueProfile a = model.profile.of(operands.first).at(progress);
    ValueProfile b = model.profile.of(operands.second).at(progress);
    return a.expectedTermsPerValue() <= b.expectedTermsPerValue()
               ? operands.first
               : operands.second;
}

PhaseRunResult
runPhaseSample(const ModelInfo &model, const LayerShape &layer,
               TrainingOp op, double progress, const PhaseRunConfig &cfg)
{
    panic_if(cfg.sampleSteps < 1, "need at least one sample step");

    OpOperands operands = operandsOf(op);
    TensorKind serial = cfg.autoSerialSide
                            ? chooseSerialSide(model, op, progress)
                            : operands.first;
    TensorKind parallel = serial == operands.first ? operands.second
                                                   : operands.first;

    ValueProfile serial_profile = model.profile.of(serial).at(progress);
    ValueProfile parallel_profile =
        model.profile.of(parallel).at(progress);

    // Seed streams per (layer, op) so repeated runs are reproducible
    // but distinct layers see distinct values.
    uint64_t base_seed = cfg.seed * 1000003 +
                         std::hash<std::string>{}(layer.name) +
                         static_cast<uint64_t>(op) * 97;
    TensorGenerator serial_gen(serial_profile, base_seed);
    TensorGenerator parallel_gen(parallel_profile, base_seed ^ 0x5eed);

    Tile tile(cfg.tile);
    const int lanes = cfg.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(cfg.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(cfg.tile.rows) * lanes;

    // Cap the accumulation depth at the layer's actual K traversal.
    int steps_per_output = std::max<int>(
        1, std::min<int64_t>(cfg.stepsPerOutput,
                             (layer.k + lanes - 1) / lanes));

    PhaseRunResult result;
    result.serialSide = serial;

    // Operand arenas reused across bursts: one flat slab per side,
    // step s of a burst at a_buf + s * a_len / b_buf + s * b_len.
    const size_t max_burst = static_cast<size_t>(
        std::min(cfg.sampleSteps, steps_per_output));
    std::vector<BFloat16> a_buf(max_burst * a_len);
    std::vector<BFloat16> b_buf(max_burst * b_len);
    std::vector<TileStepView> views(max_burst);

    uint64_t total_cycles = 0;
    int done = 0;
    while (done < cfg.sampleSteps) {
        size_t burst = static_cast<size_t>(
            std::min(cfg.sampleSteps - done, steps_per_output));
        for (size_t s = 0; s < burst; ++s) {
            BFloat16 *a = a_buf.data() + s * a_len;
            BFloat16 *b = b_buf.data() + s * b_len;
            serial_gen.fill(a, a_len);
            parallel_gen.fill(b, b_len);
            result.serialStats.merge(
                measureTensor(a, a_len, cfg.tile.pe.encoding));
            result.parallelStats.merge(
                measureTensor(b, b_len, cfg.tile.pe.encoding));
            views[s] = TileStepView{a, b};
        }
        TileRunResult run = tile.run(views.data(), burst, cfg.engine);
        total_cycles += run.cycles;
        tile.resetAccumulators();
        done += static_cast<int>(burst);
    }

    result.steps = static_cast<uint64_t>(cfg.sampleSteps);
    result.avgCyclesPerStep = static_cast<double>(total_cycles) /
                              static_cast<double>(cfg.sampleSteps);
    result.peStats = tile.aggregateStats();
    return result;
}

} // namespace fpraker
