#include "accel/phase_runner.h"

#include <algorithm>
#include <functional>
#include <string>

#include "common/logging.h"

namespace fpraker {

TensorKind
chooseSerialSide(const ModelInfo &model, TrainingOp op, double progress)
{
    OpOperands operands = operandsOf(op);
    ValueProfile a = model.profile.of(operands.first).at(progress);
    ValueProfile b = model.profile.of(operands.second).at(progress);
    return a.expectedTermsPerValue() <= b.expectedTermsPerValue()
               ? operands.first
               : operands.second;
}

PhaseRunResult
runPhaseSample(const ModelInfo &model, const LayerShape &layer,
               TrainingOp op, double progress, const PhaseRunConfig &cfg)
{
    panic_if(cfg.sampleSteps < 1, "need at least one sample step");

    OpOperands operands = operandsOf(op);
    TensorKind serial = cfg.autoSerialSide
                            ? chooseSerialSide(model, op, progress)
                            : operands.first;
    TensorKind parallel = serial == operands.first ? operands.second
                                                   : operands.first;

    ValueProfile serial_profile = model.profile.of(serial).at(progress);
    ValueProfile parallel_profile =
        model.profile.of(parallel).at(progress);

    // Seed streams per (layer, op) so repeated runs are reproducible
    // but distinct layers see distinct values.
    uint64_t base_seed = cfg.seed * 1000003 +
                         std::hash<std::string>{}(layer.name) +
                         static_cast<uint64_t>(op) * 97;
    TensorGenerator serial_gen(serial_profile, base_seed);
    TensorGenerator parallel_gen(parallel_profile, base_seed ^ 0x5eed);

    Tile tile(cfg.tile);
    const int lanes = cfg.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(cfg.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(cfg.tile.rows) * lanes;

    // Cap the accumulation depth at the layer's actual K traversal.
    int steps_per_output = std::max<int>(
        1, std::min<int64_t>(cfg.stepsPerOutput,
                             (layer.k + lanes - 1) / lanes));

    PhaseRunResult result;
    result.serialSide = serial;

    uint64_t total_cycles = 0;
    int done = 0;
    while (done < cfg.sampleSteps) {
        int burst = std::min(cfg.sampleSteps - done, steps_per_output);
        std::vector<TileStep> steps(static_cast<size_t>(burst));
        for (auto &step : steps) {
            step.a = serial_gen.generate(a_len);
            step.b = parallel_gen.generate(b_len);
            result.serialStats.merge(
                measureTensor(step.a, cfg.tile.pe.encoding));
            result.parallelStats.merge(
                measureTensor(step.b, cfg.tile.pe.encoding));
        }
        TileRunResult run = tile.run(steps);
        total_cycles += run.cycles;
        tile.resetAccumulators();
        done += burst;
    }

    result.steps = static_cast<uint64_t>(cfg.sampleSteps);
    result.avgCyclesPerStep = static_cast<double>(total_cycles) /
                              static_cast<double>(cfg.sampleSteps);
    result.peStats = tile.aggregateStats();
    return result;
}

} // namespace fpraker
