/**
 * @file
 * Whole-sweep scheduling: one engine for every (model, config, phase)
 * job of an evaluation.
 *
 * PR 1 parallelized a single (layer, op) unit and a single model run;
 * the figure/table harnesses still walked the model zoo and config
 * grid serially, so a sweep's wall-clock was the sum of its model
 * runs. SweepRunner lifts the shard grain to the whole evaluation:
 *
 *  - every accelerator variant of a sweep is bound to ONE shared
 *    SimEngine (addAccelerator), so workers drain a single queue
 *    instead of each model run spinning up its own pool;
 *  - runModels flattens all jobs into their (job, layer, op) units and
 *    shards that flat index space — a sweep of many small models
 *    saturates the pool just as well as one large model;
 *  - runLayerOps does the same for layer-grain sweeps (Fig. 21's
 *    per-layer accumulator widths, the inference extension);
 *  - parallelFor shards any other per-model measurement loop (the
 *    sparsity/compression harnesses that never build an accelerator).
 *
 * Determinism: jobs only read shared state (models, configs, the
 * pre-warmed BDC caches); every unit writes its own result slot;
 * reductions run serially in job order; and all sampling inside a unit
 * seeds RNG substreams by unit index (trace/rng_stream.h). Reports are
 * therefore bit-identical at any thread count.
 *
 * Memoization (the phase grain): every accelerator a runner builds
 * shares the process-wide SimMemo::global() through its phase samples,
 * so sweep jobs that re-simulate an identical (config, plan, seed,
 * profiles) phase — ablation grids that vary one knob, repeated
 * progress points, `fpraker run --all` experiments over the same zoo —
 * hit warm and skip the tile entirely. Cached values are byte copies
 * of the identical computation, so reports stay bit-identical whether
 * the memo is cold, warm, or off (FPRAKER_MEMO=off). memoStats()
 * exposes the global counters for provenance.
 */

#ifndef FPRAKER_SIM_SWEEP_RUNNER_H
#define FPRAKER_SIM_SWEEP_RUNNER_H

#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "sim/sim_engine.h"
#include "sim/sim_memo.h"

namespace fpraker {

/** One (model, config, phase) job of a sweep. */
struct SweepJob
{
    const Accelerator *accel; //!< Variant to simulate on.
    const ModelInfo *model;
    double progress = 0.5; //!< Training-progress point ("phase").
};

/** One layer-grain job (per-layer config sweeps, inference). */
struct SweepLayerJob
{
    const Accelerator *accel;
    const ModelInfo *model;
    const LayerShape *layer;
    TrainingOp op = TrainingOp::Forward;
    double progress = 0.5;
    /** Optional trace-backed operand source (null = generator). */
    const SlabSupply *supply = nullptr;
};

/** Shards an entire evaluation sweep across one shared engine. */
class SweepRunner
{
  public:
    /** @param threads worker count; 1 = serial, 0 = defaultThreads(). */
    explicit SweepRunner(int threads = 0);

    /**
     * Borrow @p shared as the engine instead of owning one. This is
     * how `fpraker run --all` drives many concurrent experiments (each
     * with its own Session/SweepRunner) through ONE worker pool: the
     * experiments shard across the engine, and their inner fan-outs
     * re-enter it (nested parallelFor degrades to inline execution).
     * @p shared must outlive the runner.
     */
    explicit SweepRunner(SimEngine *shared);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** The shared engine (for ad-hoc parallelFor use). */
    SimEngine &engine() { return *engine_; }
    int threads() const { return engine_->threads(); }

    /**
     * Build an accelerator variant bound to the shared engine and keep
     * it alive for the runner's lifetime (cfg.threads is ignored — the
     * runner's engine is the only pool). Returned reference is stable.
     */
    const Accelerator &addAccelerator(const AcceleratorConfig &cfg,
                                      const EnergyModelConfig &ecfg = {});

    /**
     * Run every job, sharding the flattened (job, layer, op) units
     * across the engine; reports come back in job order, bit-identical
     * to a serial walk for any thread count.
     */
    std::vector<ModelRunReport> runModels(const std::vector<SweepJob> &jobs);

    /** Run layer-grain jobs the same way; results in job order. */
    std::vector<LayerOpReport>
    runLayerOps(const std::vector<SweepLayerJob> &jobs);

    /**
     * Shard an arbitrary ordered index space (per-model measurement
     * loops). fn(i) must only touch state owned by index i; the caller
     * reduces the slots in index order after the barrier.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Counters of the process-wide SimMemo the runner's phase samples
     * share (all-zero when FPRAKER_MEMO=off). Provenance only: counts
     * depend on thread interleaving, values never do.
     */
    static SimMemo::Stats memoStats();

  private:
    std::unique_ptr<SimEngine> ownedEngine_; //!< Null when borrowing.
    SimEngine *engine_;
    std::vector<std::unique_ptr<Accelerator>> accels_;
};

} // namespace fpraker

#endif // FPRAKER_SIM_SWEEP_RUNNER_H
