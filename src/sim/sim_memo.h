/**
 * @file
 * Content-addressed simulation memoization (burst and phase grains).
 *
 * Bursts are pure functions of (tile configuration, operand window
 * bytes) — the accumulators reset between output blocks, and phase
 * runs consume only a burst's cycles and statistics, never the tile's
 * float outputs — so repeated operand content (im2col-overlapping conv
 * windows, re-sampled (layer, op, progress) phases, ablation grids
 * re-simulating identical phases) repeats the exact same simulation.
 * SimMemo turns that repetition into lookups: a thread-safe,
 * striped-lock, byte-budgeted LRU keyed by FNV-1a over the full key
 * bytes (config digest ‖ operand bytes).
 *
 * Exact by construction: every entry stores its complete key bytes and
 * a lookup memcmp-verifies them, so a hash collision is a miss, never
 * a wrong value — memo-on and memo-off runs are byte-identical
 * (tests/test_memo.cpp fuzzes the parity at 1/2/8 threads and under
 * eviction).
 *
 * The process-wide instance (global()) is shared by every phase run
 * and SweepRunner job; the FPRAKER_MEMO environment knob sizes it
 * (byte budget) or disables it ("off"/"0" — loud-fail on anything
 * else, like FPRAKER_SIMD). Hit/miss counts land in result provenance
 * only, never in fingerprints.
 */

#ifndef FPRAKER_SIM_SIM_MEMO_H
#define FPRAKER_SIM_SIM_MEMO_H

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace fpraker {

/** Thread-safe content-addressed LRU of simulation results. */
class SimMemo
{
  public:
    /** Counters (monotonic; bytes/entries are the current residency). */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;     //!< Lookups that found nothing usable.
        uint64_t insertions = 0;
        uint64_t evictions = 0;  //!< Entries displaced by the budget.
        uint64_t bytes = 0;      //!< Resident key+value+overhead bytes.
        uint64_t entries = 0;
    };

    /** @param budgetBytes total byte budget across all stripes. */
    explicit SimMemo(size_t budgetBytes);

    SimMemo(const SimMemo &) = delete;
    SimMemo &operator=(const SimMemo &) = delete;

    /**
     * Look up @p hash (FNV-1a over @p key). Hits only when the stored
     * key bytes and value size match exactly; copies the value into
     * @p value and refreshes LRU recency. Counts a hit or miss.
     */
    bool lookup(uint64_t hash, const void *key, size_t keyLen,
                void *value, size_t valueLen);

    /**
     * Insert a (key, value) pair, evicting least-recently-used entries
     * until the stripe fits its budget share. An entry larger than the
     * share, or a hash already present, is skipped (the present entry
     * was verified usable or will keep missing — either way correct).
     */
    void insert(uint64_t hash, const void *key, size_t keyLen,
                const void *value, size_t valueLen);

    Stats stats() const;
    uint64_t bytesHeld() const;
    size_t budget() const { return budget_; }

    /**
     * The process-wide memo, sized by FPRAKER_MEMO (unset = 64 MiB;
     * "off"/"0" = nullptr, forcing the unmemoized path everywhere;
     * a byte count sizes the budget; anything else panics loudly).
     */
    static SimMemo *global();

  private:
    struct Entry
    {
        uint64_t hash = 0;
        std::vector<unsigned char> key;
        std::vector<unsigned char> value;
    };

    /** Fixed per-entry accounting overhead (map node, list node). */
    static constexpr uint64_t kEntryOverhead = 64;

    struct Stripe
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; //!< Front = most recent.
        std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
        uint64_t bytes = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
    };

    Stripe &stripeOf(uint64_t hash);

    size_t budget_;
    size_t stripeBudget_;
    std::vector<Stripe> stripes_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace fpraker

#endif // FPRAKER_SIM_SIM_MEMO_H
