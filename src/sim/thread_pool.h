/**
 * @file
 * A small task pool for sharding independent simulation units.
 *
 * Workers pull closures from a shared queue; SimEngine layers a
 * deterministic parallel-for on top. The pool never owns simulation
 * state — all sharing discipline (one column / one layer-op per task,
 * per-worker stats merged afterwards) lives with the callers, which is
 * what keeps parallel runs bit-identical to serial ones.
 */

#ifndef FPRAKER_SIM_THREAD_POOL_H
#define FPRAKER_SIM_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fpraker {

/** Fixed-size worker pool executing posted closures FIFO. */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (0 is allowed: post() then runs inline). */
    explicit ThreadPool(int workers);

    /** Drains nothing: pending tasks are abandoned, running ones joined. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Enqueue @p n copies of a task under one lock with a single
     * wake-all (0 workers runs them inline). Tasks must be
     * self-contained: anything they reference must outlive them
     * (SimEngine uses shared ownership).
     */
    void postCopies(const std::function<void()> &task, int n);

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace fpraker

#endif // FPRAKER_SIM_THREAD_POOL_H
