#include "sim/sim_memo.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace fpraker {

namespace {

FPRAKER_METRIC_COUNTER(g_hits, "memo.hits", "sim memo lookup hits");
FPRAKER_METRIC_COUNTER(g_misses, "memo.misses",
                       "sim memo lookup misses");
FPRAKER_METRIC_COUNTER(g_insertions, "memo.insertions",
                       "sim memo entries inserted");
FPRAKER_METRIC_COUNTER(g_evictions, "memo.evictions",
                       "sim memo entries evicted for budget");
FPRAKER_METRIC_GAUGE(g_bytes, "memo.bytes",
                     "sim memo resident bytes (keys+values+overhead)");
FPRAKER_METRIC_GAUGE(g_entries, "memo.entries",
                     "sim memo resident entries");

/**
 * Stripe count for a budget: enough stripes to keep lock contention
 * off the simulation's critical path, but never so many that a
 * stripe's budget share drops below one realistic burst entry
 * (~8-64 KiB) — a tiny test budget runs single-striped so eviction
 * still admits entries instead of rejecting everything.
 */
size_t
stripesFor(size_t budget)
{
    size_t n = budget / (256u << 10);
    if (n < 1)
        n = 1;
    if (n > 16)
        n = 16;
    return n;
}

} // namespace

SimMemo::SimMemo(size_t budgetBytes)
    : budget_(budgetBytes), stripes_(stripesFor(budgetBytes))
{
    stripeBudget_ = budget_ / stripes_.size();
}

SimMemo::Stripe &
SimMemo::stripeOf(uint64_t hash)
{
    // The low bits feed the map's bucket index; pick stripe from the
    // high bits so the two partitions stay independent.
    return stripes_[(hash >> 48) % stripes_.size()];
}

bool
SimMemo::lookup(uint64_t hash, const void *key, size_t keyLen,
                void *value, size_t valueLen)
{
    Stripe &s = stripeOf(hash);
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.index.find(hash);
        if (it != s.index.end()) {
            Entry &e = *it->second;
            // Exact by construction: the full key bytes must match
            // (a 64-bit collision is a miss, never a wrong value).
            if (e.key.size() == keyLen && e.value.size() == valueLen &&
                std::memcmp(e.key.data(), key, keyLen) == 0) {
                std::memcpy(value, e.value.data(), valueLen);
                s.lru.splice(s.lru.begin(), s.lru, it->second);
                hits_.fetch_add(1, std::memory_order_relaxed);
                g_hits.add();
                return true;
            }
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    g_misses.add();
    return false;
}

void
SimMemo::insert(uint64_t hash, const void *key, size_t keyLen,
                const void *value, size_t valueLen)
{
    const uint64_t cost = keyLen + valueLen + kEntryOverhead;
    if (cost > stripeBudget_)
        return; // Larger than a whole stripe share: never cacheable.

    Stripe &s = stripeOf(hash);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.index.count(hash))
        return; // Present entry already verified usable (or missing).

    while (s.bytes + cost > stripeBudget_ && !s.lru.empty()) {
        Entry &tail = s.lru.back();
        const uint64_t freed =
            tail.key.size() + tail.value.size() + kEntryOverhead;
        s.bytes -= freed;
        s.index.erase(tail.hash);
        s.lru.pop_back();
        s.evictions += 1;
        g_evictions.add();
        g_bytes.add(-static_cast<int64_t>(freed));
        g_entries.add(-1);
    }

    Entry e;
    e.hash = hash;
    const unsigned char *kp = static_cast<const unsigned char *>(key);
    const unsigned char *vp = static_cast<const unsigned char *>(value);
    e.key.assign(kp, kp + keyLen);
    e.value.assign(vp, vp + valueLen);
    s.lru.push_front(std::move(e));
    s.index.emplace(hash, s.lru.begin());
    s.bytes += cost;
    s.insertions += 1;
    g_insertions.add();
    g_bytes.add(static_cast<int64_t>(cost));
    g_entries.add(1);
}

SimMemo::Stats
SimMemo::stats() const
{
    Stats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    for (const Stripe &s : stripes_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        st.insertions += s.insertions;
        st.evictions += s.evictions;
        st.bytes += s.bytes;
        st.entries += s.lru.size();
    }
    return st;
}

uint64_t
SimMemo::bytesHeld() const
{
    uint64_t bytes = 0;
    for (const Stripe &s : stripes_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        bytes += s.bytes;
    }
    return bytes;
}

SimMemo *
SimMemo::global()
{
    static SimMemo *g = []() -> SimMemo * {
        const char *env = std::getenv("FPRAKER_MEMO");
        if (!env || !*env)
            return new SimMemo(64u << 20);
        if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)
            return nullptr;
        char *end = nullptr;
        unsigned long long bytes = std::strtoull(env, &end, 10);
        // Loud-fail like FPRAKER_SIMD: a typo must never silently
        // change what the run measures.
        panic_if(end == env || *end != '\0' || bytes == 0,
                 "FPRAKER_MEMO=%s: expected 'off' or a byte budget",
                 env);
        return new SimMemo(static_cast<size_t>(bytes));
    }();
    return g;
}

} // namespace fpraker
