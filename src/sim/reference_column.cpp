#include "sim/reference_column.h"

#include <algorithm>
#include <climits>

#include "common/logging.h"

namespace fpraker {

ReferenceColumn::ReferenceColumn(const PeConfig &cfg, int num_pes)
    : cfg_(cfg), numPes_(num_pes), encoder_(cfg.encoding)
{
    panic_if(cfg_.lanes < 1 || cfg_.lanes > ExponentBlockResult::kMaxLanes,
             "unsupported lane count %d", cfg_.lanes);
    panic_if(numPes_ < 1, "column needs at least one PE");
    panic_if(cfg_.maxDelta < 0, "negative shifter window");
    streams_.resize(static_cast<size_t>(cfg_.lanes));
    peLanes_.resize(static_cast<size_t>(numPes_) * cfg_.lanes);
    pes_.reserve(static_cast<size_t>(numPes_));
    for (int r = 0; r < numPes_; ++r)
        pes_.push_back(PeState{ChunkedAccumulator(cfg_.acc), PeStats{}});
}

void
ReferenceColumn::beginSet(const BFloat16 *a, const BFloat16 *b,
                          int b_stride)
{
    panic_if(inSet_, "beginSet while a set is in flight");

    for (int l = 0; l < cfg_.lanes; ++l) {
        streams_[l].terms = encoder_.encode(a[l]);
        streams_[l].cursor = 0;
    }

    for (int r = 0; r < numPes_; ++r) {
        PeState &pe = pes_[r];
        MacPair pairs[ExponentBlockResult::kMaxLanes];
        for (int l = 0; l < cfg_.lanes; ++l)
            pairs[l] = MacPair{a[l], b[r * b_stride + l]};

        ExponentBlockResult ebr = ExponentBlock::compute(
            pairs, cfg_.lanes, pe.acc.chunkRegister().exponent());
        pe.acc.chunkRegister().alignTo(ebr.emax);

        for (int l = 0; l < cfg_.lanes; ++l) {
            PeLane &pl = lane(r, l);
            pl.abExp = ebr.abExp[l];
            pl.prodNeg = ebr.prodNeg[l];
            pl.bSig = pairs[l].b.significand();
            pl.fired = false;
            pl.obDone = false;
            pe.stats.termsZeroSkipped += static_cast<uint64_t>(
                kTermSlots - streams_[l].terms.size());
        }
        pe.stats.sets += 1;
        pe.stats.macs += static_cast<uint64_t>(cfg_.lanes);
    }

    setCycles_ = 0;
    inSet_ = true;
}

void
ReferenceColumn::scanOutOfBounds()
{
    if (!cfg_.skipOutOfBounds)
        return;
    const int thr = cfg_.effectiveObThreshold();
    for (int r = 0; r < numPes_; ++r) {
        int acc_exp = pes_[r].acc.chunkRegister().exponent();
        for (int l = 0; l < cfg_.lanes; ++l) {
            LaneStream &s = streams_[l];
            PeLane &pl = lane(r, l);
            if (pl.obDone || pl.fired || s.cursor >= s.terms.size())
                continue;
            int k = acc_exp - pl.abExp + s.terms[s.cursor].shift;
            if (k > thr) {
                pl.obDone = true;
                pes_[r].stats.termsObSkipped += static_cast<uint64_t>(
                    s.terms.size() - s.cursor);
            }
        }
    }
}

bool
ReferenceColumn::advanceCursors()
{
    bool progress = false;
    for (int l = 0; l < cfg_.lanes; ++l) {
        LaneStream &s = streams_[l];
        if (s.cursor >= s.terms.size())
            continue;
        bool all_consumed = true;
        bool all_ob = true;
        for (int r = 0; r < numPes_; ++r) {
            const PeLane &pl = lane(r, l);
            all_consumed &= pl.fired || pl.obDone;
            all_ob &= pl.obDone;
        }
        if (!all_consumed)
            continue;
        if (all_ob) {
            s.cursor = s.terms.size();
        } else {
            ++s.cursor;
            for (int r = 0; r < numPes_; ++r)
                lane(r, l).fired = false;
        }
        progress = true;
    }
    return progress;
}

void
ReferenceColumn::settle()
{
    do {
        scanOutOfBounds();
    } while (advanceCursors());
}

bool
ReferenceColumn::allStreamsDone() const
{
    for (int l = 0; l < cfg_.lanes; ++l)
        if (streams_[l].cursor < streams_[l].terms.size())
            return false;
    return true;
}

bool
ReferenceColumn::busy() const
{
    return inSet_ && !allStreamsDone();
}

void
ReferenceColumn::stepCycle()
{
    if (!inSet_)
        return;

    settle();
    if (allStreamsDone())
        return;

    ++setCycles_;

    for (int r = 0; r < numPes_; ++r) {
        PeState &pe = pes_[r];
        int acc_exp = pe.acc.chunkRegister().exponent();

        int k_of[ExponentBlockResult::kMaxLanes];
        bool pending[ExponentBlockResult::kMaxLanes];
        int base = INT_MAX;
        for (int l = 0; l < cfg_.lanes; ++l) {
            const LaneStream &s = streams_[l];
            const PeLane &pl = lane(r, l);
            pending[l] = !pl.fired && !pl.obDone &&
                         s.cursor < s.terms.size();
            if (pending[l]) {
                k_of[l] = acc_exp - pl.abExp + s.terms[s.cursor].shift;
                if (k_of[l] < base)
                    base = k_of[l];
            }
        }

        if (base == INT_MAX) {
            pe.stats.laneNoTerm += static_cast<uint64_t>(cfg_.lanes);
            continue;
        }

        int lsb_min = INT_MAX;
        int lsb_max = INT_MIN;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (!pending[l] || k_of[l] - base > cfg_.maxDelta)
                continue;
            int lsb = acc_exp - k_of[l] - 7;
            lsb_min = std::min(lsb_min, lsb);
            lsb_max = std::max(lsb_max, lsb);
        }
        const bool exact_tree =
            lsb_min == INT_MAX || lsb_max - lsb_min <= 48;
        int64_t sum = 0;
        for (int l = 0; l < cfg_.lanes; ++l) {
            const LaneStream &s = streams_[l];
            PeLane &pl = lane(r, l);
            if (!pending[l]) {
                pe.stats.laneNoTerm += 1;
                continue;
            }
            if (k_of[l] - base > cfg_.maxDelta) {
                pe.stats.laneShiftRange += 1;
                continue;
            }
            const Term &t = s.terms[s.cursor];
            int lsb = acc_exp - k_of[l] - 7;
            bool neg = pl.prodNeg != t.neg;
            if (exact_tree) {
                int64_t contrib = static_cast<int64_t>(pl.bSig)
                                  << (lsb - lsb_min);
                sum += neg ? -contrib : contrib;
            } else if (pl.bSig != 0) {
                pe.acc.chunkRegister().addValue(
                    neg, lsb, static_cast<uint64_t>(pl.bSig));
            }
            pl.fired = true;
            pe.stats.laneUseful += 1;
            pe.stats.termsProcessed += 1;
        }
        if (sum != 0) {
            pe.acc.chunkRegister().addValue(
                sum < 0, lsb_min,
                static_cast<uint64_t>(sum < 0 ? -sum : sum));
        }
    }

    settle();
}

int
ReferenceColumn::finishSet()
{
    panic_if(!inSet_, "finishSet without beginSet");
    settle();
    while (busy())
        stepCycle();

    int cycles = setCycles_;
    if (cycles < cfg_.exponentFloor) {
        int floor_add = cfg_.exponentFloor - cycles;
        for (int r = 0; r < numPes_; ++r)
            pes_[r].stats.laneExponent +=
                static_cast<uint64_t>(floor_add) * cfg_.lanes;
        cycles = cfg_.exponentFloor;
    }
    for (int r = 0; r < numPes_; ++r) {
        pes_[r].stats.setCycles += static_cast<uint64_t>(cycles);
        pes_[r].acc.tickMacs(cfg_.lanes);
    }
    inSet_ = false;
    return cycles;
}

void
ReferenceColumn::chargeInterPeStall(int cycles)
{
    panic_if(cycles < 0, "negative stall charge");
    for (int r = 0; r < numPes_; ++r) {
        pes_[r].stats.laneInterPe +=
            static_cast<uint64_t>(cycles) * cfg_.lanes;
        pes_[r].stats.setCycles += static_cast<uint64_t>(cycles);
    }
}

ChunkedAccumulator &
ReferenceColumn::accumulator(int pe)
{
    return pes_[static_cast<size_t>(pe)].acc;
}

const ChunkedAccumulator &
ReferenceColumn::accumulator(int pe) const
{
    return pes_[static_cast<size_t>(pe)].acc;
}

void
ReferenceColumn::resetAccumulators()
{
    for (auto &pe : pes_)
        pe.acc.reset();
}

const PeStats &
ReferenceColumn::stats(int pe) const
{
    return pes_[static_cast<size_t>(pe)].stats;
}

PeStats
ReferenceColumn::aggregateStats() const
{
    PeStats agg;
    for (const auto &pe : pes_)
        agg.merge(pe.stats);
    return agg;
}

ReferenceTile::ReferenceTile(const PeConfig &pe, int rows, int cols,
                             int buffer_depth)
    : pe_(pe), rows_(rows), cols_(cols), depth_(buffer_depth)
{
    panic_if(rows_ < 1 || cols_ < 1, "degenerate tile %dx%d", rows_,
             cols_);
    panic_if(depth_ < 1, "buffer depth must be at least 1");
    columns_.reserve(static_cast<size_t>(cols_));
    for (int c = 0; c < cols_; ++c)
        columns_.emplace_back(pe_, rows_);
}

ReferenceTileResult
ReferenceTile::run(const BFloat16 *a, const BFloat16 *b, size_t steps)
{
    const int lanes = pe_.lanes;
    const size_t a_len = static_cast<size_t>(cols_) * lanes;
    const size_t b_len = static_cast<size_t>(rows_) * lanes;

    std::vector<uint64_t> finish(static_cast<size_t>(cols_), 0);
    std::vector<std::vector<uint64_t>> startHistory(
        static_cast<size_t>(depth_),
        std::vector<uint64_t>(static_cast<size_t>(cols_), 0));

    ReferenceTileResult result;
    for (size_t s = 0; s < steps; ++s) {
        uint64_t avail = 0;
        if (s >= static_cast<size_t>(depth_)) {
            const auto &old =
                startHistory[s % static_cast<size_t>(depth_)];
            avail = *std::max_element(old.begin(), old.end());
        }
        auto &starts = startHistory[s % static_cast<size_t>(depth_)];
        for (int c = 0; c < cols_; ++c) {
            uint64_t start =
                std::max(finish[static_cast<size_t>(c)], avail);
            uint64_t wait = start - finish[static_cast<size_t>(c)];
            if (wait > 0)
                columns_[static_cast<size_t>(c)].chargeInterPeStall(
                    static_cast<int>(wait));
            int cycles = columns_[static_cast<size_t>(c)].runSet(
                a + s * a_len + static_cast<size_t>(c) * lanes,
                b + s * b_len, lanes);
            starts[static_cast<size_t>(c)] = start;
            finish[static_cast<size_t>(c)] =
                start + static_cast<uint64_t>(cycles);
        }
        result.steps += 1;
    }
    result.cycles =
        steps == 0 ? 0 : *std::max_element(finish.begin(), finish.end());
    return result;
}

float
ReferenceTile::output(int r, int c) const
{
    return columns_[static_cast<size_t>(c)].accumulator(r).total();
}

void
ReferenceTile::resetAccumulators()
{
    for (auto &col : columns_)
        col.resetAccumulators();
}

PeStats
ReferenceTile::aggregateStats() const
{
    PeStats agg;
    for (const auto &col : columns_)
        agg.merge(col.aggregateStats());
    return agg;
}

} // namespace fpraker
