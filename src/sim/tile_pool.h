/**
 * @file
 * Pooled per-burst tile scratch.
 *
 * Phase sampling (accel/phase_runner) decomposes into independent
 * bursts, each of which used to construct a fresh Tile plus operand
 * slab buffers — for tiny sample budgets the construction dominated
 * the simulated work (the ROADMAP-flagged allocation churn). A
 * TilePool keeps finished burst scratch on a freelist instead: a
 * worker borrows a Scratch (tile + A/B slabs + step views), runs its
 * burst, and the RAII lease returns it for the next burst to reuse.
 *
 * Reuse is bit-identical to fresh construction: Tile::resetForReuse
 * restores the only state that survives a run (accumulators and
 * statistics), and every remaining per-set field is rebuilt by
 * beginSet. tests/test_fastpath.cpp pins pooled phase runs against
 * fresh-construction runs at 1/2/8 threads.
 *
 * The pool is thread-safe (one mutex around the freelist; a borrow is
 * one pop per burst, far off the simulation's critical path) and
 * unbounded — it can never hold more Scratches than the peak number
 * of concurrent bursts, which the engine caps at its thread count.
 */

#ifndef FPRAKER_SIM_TILE_POOL_H
#define FPRAKER_SIM_TILE_POOL_H

#include <memory>
#include <mutex>
#include <vector>

#include "tile/tile.h"

namespace fpraker {

/** Freelist of reusable per-burst tile scratch for one TileConfig. */
class TilePool
{
  public:
    /** One burst's working set: the tile and its operand staging. */
    struct Scratch
    {
        explicit Scratch(const TileConfig &cfg) : tile(cfg) {}

        Tile tile;
        std::vector<BFloat16> a;          //!< [step][col * lanes + l]
        std::vector<BFloat16> b;          //!< [step][row * lanes + l]
        std::vector<TileStepView> views;  //!< One view per step.
    };

    /** Move-only RAII borrow; returns the scratch on destruction. */
    class Lease
    {
      public:
        Lease(TilePool *pool, std::unique_ptr<Scratch> scratch)
            : pool_(pool), scratch_(std::move(scratch))
        {}
        ~Lease()
        {
            if (scratch_)
                pool_->release(std::move(scratch_));
        }
        Lease(Lease &&) = default;
        Lease &operator=(Lease &&) = delete;
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        Scratch *operator->() { return scratch_.get(); }
        Scratch &operator*() { return *scratch_; }

      private:
        TilePool *pool_;
        std::unique_ptr<Scratch> scratch_;
    };

    explicit TilePool(const TileConfig &cfg) : cfg_(cfg) {}

    /**
     * Borrow a Scratch, reset to like-new tile state. Slab/view
     * buffers keep their capacity (callers resize to their burst).
     */
    Lease acquire();

    /** Scratches currently parked on the freelist (tests/metrics). */
    size_t idle() const;

    /** Scratches ever constructed (tests/metrics). */
    size_t built() const { return built_; }

    const TileConfig &config() const { return cfg_; }

  private:
    friend class Lease;
    void release(std::unique_ptr<Scratch> scratch);

    TileConfig cfg_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Scratch>> free_;
    size_t built_ = 0;
};

} // namespace fpraker

#endif // FPRAKER_SIM_TILE_POOL_H
