/**
 * @file
 * Seed-parity reference model of the FPRaker PE column and tile.
 *
 * This is the original (pre-optimization) cycle-level algorithm kept
 * verbatim: per-set TermEncoder::encode calls, full out-of-bounds
 * rescans to a fixpoint, and the serial per-step column walk. It exists
 * for two reasons:
 *
 *  - differential testing: the optimized FPRakerColumn / Tile must
 *    produce bit-identical cycles, accumulator values, and statistics
 *    (tests/test_sim.cpp fuzzes the two against each other);
 *  - perf regression: bench/perf_regression.cpp times this path as the
 *    "seed serial" baseline that optimized and parallel runs are
 *    measured against, so the speedup trajectory stays anchored.
 *
 * Do not optimize this file; it is the contract.
 */

#ifndef FPRAKER_SIM_REFERENCE_COLUMN_H
#define FPRAKER_SIM_REFERENCE_COLUMN_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pe/exponent_block.h"
#include "pe/pe_common.h"

namespace fpraker {

/** Seed-parity FPRaker PE column (see FPRakerColumn for semantics). */
class ReferenceColumn
{
  public:
    ReferenceColumn(const PeConfig &cfg, int num_pes);

    void beginSet(const BFloat16 *a, const BFloat16 *b, int b_stride);
    bool busy() const;
    void stepCycle();
    int finishSet();

    int
    runSet(const BFloat16 *a, const BFloat16 *b, int b_stride)
    {
        beginSet(a, b, b_stride);
        return finishSet();
    }

    void chargeInterPeStall(int cycles);

    ChunkedAccumulator &accumulator(int pe);
    const ChunkedAccumulator &accumulator(int pe) const;
    void resetAccumulators();

    const PeStats &stats(int pe) const;
    PeStats aggregateStats() const;

    int numPes() const { return numPes_; }
    const PeConfig &config() const { return cfg_; }

  private:
    struct LaneStream
    {
        TermStream terms;
        int cursor = 0;
    };

    struct PeLane
    {
        int abExp = 0;
        bool prodNeg = false;
        int bSig = 0;
        bool fired = false;
        bool obDone = false;
    };

    struct PeState
    {
        ChunkedAccumulator acc;
        PeStats stats;
    };

    PeLane &lane(int pe, int l) { return peLanes_[pe * cfg_.lanes + l]; }

    void scanOutOfBounds();
    bool advanceCursors();
    void settle();
    bool allStreamsDone() const;

    PeConfig cfg_;
    int numPes_;
    TermEncoder encoder_;
    std::vector<LaneStream> streams_;
    std::vector<PeLane> peLanes_;
    std::vector<PeState> pes_;
    int setCycles_ = 0;
    bool inSet_ = false;
};

/** Timing summary of a reference tile run (mirrors TileRunResult). */
struct ReferenceTileResult
{
    uint64_t cycles = 0;
    uint64_t steps = 0;
};

/**
 * Seed-parity tile walk: R x C ReferenceColumns, serial per-step loop
 * with the bounded-run-ahead recurrence. @p a / @p b are flat operand
 * streams, step s at a + s * cols * lanes and b + s * rows * lanes.
 */
class ReferenceTile
{
  public:
    ReferenceTile(const PeConfig &pe, int rows, int cols,
                  int buffer_depth);

    ReferenceTileResult run(const BFloat16 *a, const BFloat16 *b,
                            size_t steps);

    float output(int r, int c) const;
    void resetAccumulators();
    PeStats aggregateStats() const;

  private:
    PeConfig pe_;
    int rows_, cols_, depth_;
    std::vector<ReferenceColumn> columns_;
};

} // namespace fpraker

#endif // FPRAKER_SIM_REFERENCE_COLUMN_H
