#include "sim/sim_engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace fpraker {

namespace {

FPRAKER_METRIC_COUNTER(g_batches, "sim.parallel_for.batches",
                       "parallelFor batches dispatched");
FPRAKER_METRIC_COUNTER(g_units, "sim.parallel_for.units",
                       "parallelFor loop indices executed");
FPRAKER_METRIC_COUNTER(
    g_unitsStolen, "sim.parallel_for.units_stolen",
    "parallelFor loop indices claimed by pool helpers (not the caller)");

/** Shared state of one parallelFor batch (outlives abandoned tasks). */
struct Batch
{
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    const std::function<void(size_t)> *fn = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
};

/** Claim and run indices until the batch is exhausted. */
void
drain(const std::shared_ptr<Batch> &batch, bool helper)
{
    uint64_t claimed = 0;
    for (;;) {
        size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch->n)
            break;
        ++claimed;
        (*batch->fn)(i);
        if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            batch->n) {
            std::lock_guard<std::mutex> lock(batch->mutex);
            batch->cv.notify_all();
        }
    }
    if (claimed) {
        g_units.add(claimed);
        if (helper)
            g_unitsStolen.add(claimed);
    }
}

} // namespace

SimEngine::SimEngine(int threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
    panic_if(threads < 0, "negative thread count %d", threads);
    // The caller participates in every batch, so the pool provides
    // threads-1 helpers — capped at the host's spare cores, because
    // oversubscribing only adds scheduling latency (results are
    // bit-identical either way).
    int spare =
        static_cast<int>(std::thread::hardware_concurrency()) - 1;
    int workers = threads_ - 1;
    if (spare >= 0)
        workers = std::min(workers, spare);
    if (workers > 0)
        pool_ = std::make_unique<ThreadPool>(workers);
}

SimEngine::~SimEngine() = default;

void
SimEngine::parallelFor(size_t n,
                       const std::function<void(size_t)> &fn) const
{
    if (threads_ <= 1 || n <= 1 || !pool_) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        if (n) {
            g_batches.add();
            g_units.add(static_cast<uint64_t>(n));
        }
        return;
    }

    g_batches.add();
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;

    // Helpers race the caller for indices; an extra helper that arrives
    // after exhaustion returns immediately, so over-posting is harmless
    // and tasks never dereference fn once the caller has returned.
    size_t helpers =
        std::min<size_t>(static_cast<size_t>(pool_->workers()), n - 1);
    pool_->postCopies([batch] { drain(batch, /*helper=*/true); },
                      static_cast<int>(helpers));

    drain(batch, /*helper=*/false);

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] {
        return batch->done.load(std::memory_order_acquire) == batch->n;
    });
}

int
SimEngine::defaultThreads()
{
    if (const char *env = std::getenv("FPRAKER_THREADS")) {
        int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return 1;
}

} // namespace fpraker
