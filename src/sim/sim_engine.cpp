#include "sim/sim_engine.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace fpraker {

namespace {

/** Shared state of one parallelFor batch (outlives abandoned tasks). */
struct Batch
{
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    const std::function<void(size_t)> *fn = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
};

/** Claim and run indices until the batch is exhausted. */
void
drain(const std::shared_ptr<Batch> &batch)
{
    for (;;) {
        size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch->n)
            return;
        (*batch->fn)(i);
        if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            batch->n) {
            std::lock_guard<std::mutex> lock(batch->mutex);
            batch->cv.notify_all();
        }
    }
}

} // namespace

SimEngine::SimEngine(int threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
    panic_if(threads < 0, "negative thread count %d", threads);
    // The caller participates in every batch, so the pool provides
    // threads-1 helpers — capped at the host's spare cores, because
    // oversubscribing only adds scheduling latency (results are
    // bit-identical either way).
    int spare =
        static_cast<int>(std::thread::hardware_concurrency()) - 1;
    int workers = threads_ - 1;
    if (spare >= 0)
        workers = std::min(workers, spare);
    if (workers > 0)
        pool_ = std::make_unique<ThreadPool>(workers);
}

SimEngine::~SimEngine() = default;

void
SimEngine::parallelFor(size_t n,
                       const std::function<void(size_t)> &fn) const
{
    if (threads_ <= 1 || n <= 1 || !pool_) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;

    // Helpers race the caller for indices; an extra helper that arrives
    // after exhaustion returns immediately, so over-posting is harmless
    // and tasks never dereference fn once the caller has returned.
    size_t helpers =
        std::min<size_t>(static_cast<size_t>(pool_->workers()), n - 1);
    pool_->postCopies([batch] { drain(batch); },
                      static_cast<int>(helpers));

    drain(batch);

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] {
        return batch->done.load(std::memory_order_acquire) == batch->n;
    });
}

int
SimEngine::defaultThreads()
{
    if (const char *env = std::getenv("FPRAKER_THREADS")) {
        int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return 1;
}

} // namespace fpraker
