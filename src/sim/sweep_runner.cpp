#include "sim/sweep_runner.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace fpraker {

namespace {

/** One deduplicated BDC warm-up unit: (accelerator, model, progress). */
struct WarmUnit
{
    const Accelerator *accel;
    const ModelInfo *model;
    double progress;

    bool
    operator<(const WarmUnit &o) const
    {
        if (accel != o.accel)
            return accel < o.accel;
        if (model != o.model)
            return model < o.model;
        return progress < o.progress;
    }
};

} // namespace

/**
 * Shard the BDC warm-up prelude across the engine. The analysis is
 * pure per-(model, kind, progress) work guarded by the accelerator's
 * cache mutex, and a racing duplicate computation inserts an
 * identical value, so warming in parallel keeps the subsequent
 * fan-out allocation-quiet without affecting results. Units dedupe
 * first: a sweep usually repeats the same (accel, model, progress)
 * triple across many jobs.
 */
template <typename Job>
static void
warmBdcCaches(SimEngine &engine, const std::vector<Job> &jobs)
{
    std::vector<WarmUnit> units;
    units.reserve(jobs.size());
    for (const Job &job : jobs)
        units.push_back(WarmUnit{job.accel, job.model, job.progress});
    std::sort(units.begin(), units.end());
    units.erase(std::unique(units.begin(), units.end(),
                            [](const WarmUnit &a, const WarmUnit &b) {
                                return !(a < b) && !(b < a);
                            }),
                units.end());
    engine.parallelFor(units.size(), [&](size_t i) {
        units[i].accel->warmBdcCache(*units[i].model,
                                     units[i].progress);
    });
}

SweepRunner::SweepRunner(int threads)
    : ownedEngine_(std::make_unique<SimEngine>(threads)),
      engine_(ownedEngine_.get())
{
}

SweepRunner::SweepRunner(SimEngine *shared)
    : engine_(shared)
{
    panic_if(!shared, "borrowed engine must not be null");
}

SweepRunner::~SweepRunner() = default;

const Accelerator &
SweepRunner::addAccelerator(const AcceleratorConfig &cfg,
                            const EnergyModelConfig &ecfg)
{
    accels_.push_back(
        std::make_unique<Accelerator>(cfg, ecfg, engine_));
    return *accels_.back();
}

std::vector<ModelRunReport>
SweepRunner::runModels(const std::vector<SweepJob> &jobs)
{
    // Flatten every job into its (layer, op) units so a sweep of many
    // small models fills the pool as well as one large model. The BDC
    // caches warm up front, themselves sharded across the engine, so
    // the unit fan-out only reads them.
    for (const SweepJob &job : jobs)
        panic_if(!job.accel || !job.model, "incomplete sweep job");
    warmBdcCaches(*engine_, jobs);

    struct Unit
    {
        size_t job;
        LayerOpUnit u;
    };
    std::vector<Unit> units;
    std::vector<size_t> first(jobs.size() + 1, 0);
    for (size_t j = 0; j < jobs.size(); ++j) {
        const SweepJob &job = jobs[j];
        first[j] = units.size();
        for (const LayerOpUnit &u : Accelerator::modelUnits(*job.model))
            units.push_back(Unit{j, u});
    }
    first[jobs.size()] = units.size();

    std::vector<LayerOpReport> results(units.size());
    engine_->parallelFor(units.size(), [&](size_t i) {
        const Unit &unit = units[i];
        const SweepJob &job = jobs[unit.job];
        obs::TraceSpan span(
            "sweep", obs::TraceCollector::instance().enabled()
                         ? unit.u.layer->name + ":" +
                               opLabel(unit.u.op)
                         : std::string());
        results[i] = job.accel->runLayerOp(*job.model, *unit.u.layer,
                                           unit.u.op, job.progress);
    });

    // Reduce per job, in job order.
    std::vector<ModelRunReport> reports;
    reports.reserve(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        std::vector<LayerOpReport> slice(
            std::make_move_iterator(results.begin() +
                                    static_cast<ptrdiff_t>(first[j])),
            std::make_move_iterator(results.begin() +
                                    static_cast<ptrdiff_t>(first[j + 1])));
        reports.push_back(Accelerator::reduceModel(
            *jobs[j].model, jobs[j].progress, std::move(slice)));
    }
    return reports;
}

std::vector<LayerOpReport>
SweepRunner::runLayerOps(const std::vector<SweepLayerJob> &jobs)
{
    for (const SweepLayerJob &job : jobs)
        panic_if(!job.accel || !job.model || !job.layer,
                 "incomplete sweep layer job");
    warmBdcCaches(*engine_, jobs);
    std::vector<LayerOpReport> results(jobs.size());
    engine_->parallelFor(jobs.size(), [&](size_t i) {
        const SweepLayerJob &job = jobs[i];
        obs::TraceSpan span(
            "sweep", obs::TraceCollector::instance().enabled()
                         ? job.layer->name + ":" + opLabel(job.op)
                         : std::string());
        results[i] = job.accel->runLayerOp(*job.model, *job.layer,
                                           job.op, job.progress,
                                           job.supply);
    });
    return results;
}

void
SweepRunner::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    engine_->parallelFor(n, fn);
}

SimMemo::Stats
SweepRunner::memoStats()
{
    SimMemo *memo = SimMemo::global();
    return memo ? memo->stats() : SimMemo::Stats{};
}

} // namespace fpraker
