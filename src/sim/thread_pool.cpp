#include "sim/thread_pool.h"

#include "obs/metrics.h"

namespace fpraker {

namespace {
FPRAKER_METRIC_COUNTER(g_tasksPosted, "sim.pool.tasks_posted",
                       "tasks enqueued on the engine thread pool");
FPRAKER_METRIC_GAUGE(g_queueDepth, "sim.pool.queue_depth",
                     "tasks waiting in the engine thread pool queue");
} // namespace

ThreadPool::ThreadPool(int workers)
{
    threads_.reserve(static_cast<size_t>(workers > 0 ? workers : 0));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        queue_.clear();
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::postCopies(const std::function<void()> &task, int n)
{
    if (threads_.empty()) {
        for (int i = 0; i < n; ++i)
            task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (int i = 0; i < n; ++i)
            queue_.push_back(task);
        g_queueDepth.set(static_cast<int64_t>(queue_.size()));
    }
    g_tasksPosted.add(static_cast<uint64_t>(n > 0 ? n : 0));
    cv_.notify_all();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            g_queueDepth.set(static_cast<int64_t>(queue_.size()));
        }
        task();
    }
}

} // namespace fpraker
