#include "sim/thread_pool.h"

namespace fpraker {

ThreadPool::ThreadPool(int workers)
{
    threads_.reserve(static_cast<size_t>(workers > 0 ? workers : 0));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        queue_.clear();
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::postCopies(const std::function<void()> &task, int n)
{
    if (threads_.empty()) {
        for (int i = 0; i < n; ++i)
            task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (int i = 0; i < n; ++i)
            queue_.push_back(task);
    }
    cv_.notify_all();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace fpraker
