#include "sim/tile_pool.h"

namespace fpraker {

TilePool::Lease
TilePool::acquire()
{
    std::unique_ptr<Scratch> scratch;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!free_.empty()) {
            scratch = std::move(free_.back());
            free_.pop_back();
        } else {
            ++built_;
        }
    }
    if (!scratch)
        scratch = std::make_unique<Scratch>(cfg_);
    else
        scratch->tile.resetForReuse();
    return Lease(this, std::move(scratch));
}

void
TilePool::release(std::unique_ptr<Scratch> scratch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(scratch));
}

size_t
TilePool::idle() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
}

} // namespace fpraker
