/**
 * @file
 * Deterministic parallel execution of independent simulation units.
 *
 * The simulator's work decomposes into units that share no mutable
 * state: the (layer, op) jobs of a whole-model run and the per-column
 * set batches of a tile run. SimEngine shards such index spaces across
 * a worker pool; each unit writes only to its own result slot and the
 * caller reduces the slots in index order, so the outcome is
 * bit-identical for any thread count (threads=1 short-circuits to a
 * plain serial loop).
 *
 * parallelFor is re-entrant: a unit may itself call parallelFor (a
 * model run fanning out layer-ops whose phase samples fan out tile
 * columns). The calling thread always participates in its own batch,
 * so nesting degrades to inline execution instead of deadlocking when
 * all workers are busy.
 */

#ifndef FPRAKER_SIM_SIM_ENGINE_H
#define FPRAKER_SIM_SIM_ENGINE_H

#include <functional>
#include <memory>

#include "sim/thread_pool.h"

namespace fpraker {

/** Sharded, deterministic executor for independent simulation units. */
class SimEngine
{
  public:
    /**
     * @param threads worker count; 1 = serial, 0 = defaultThreads().
     */
    explicit SimEngine(int threads = 0);
    ~SimEngine();

    SimEngine(const SimEngine &) = delete;
    SimEngine &operator=(const SimEngine &) = delete;

    /** Effective thread count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Run fn(0) .. fn(n-1), sharded across the pool; returns when all
     * calls completed. fn must only touch state owned by its index.
     * Serial (threads() == 1) runs the same loop inline.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn) const;

    /**
     * Thread count used when a config leaves the knob at 0: the
     * FPRAKER_THREADS environment variable, else 1 (the deterministic
     * serial baseline; parallelism is opt-in).
     */
    static int defaultThreads();

  private:
    int threads_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace fpraker

#endif // FPRAKER_SIM_SIM_ENGINE_H
