/**
 * @file
 * The optimized bit-parallel baseline PE (paper section V-A).
 *
 * The baseline is an efficient fused MAC unit that multiplies 8 bfloat16
 * pairs per cycle, aligns the products to their common maximum exponent,
 * reduces them in an adder tree, and accumulates into the same
 * extended-precision chunk-based accumulator as FPRaker. It is fully
 * pipelined: every set takes exactly one cycle regardless of values, and
 * ineffectual work at best power-gates datapath slices (modeled by the
 * energy layer) — it can never shorten a cycle.
 */

#ifndef FPRAKER_PE_BASELINE_PE_H
#define FPRAKER_PE_BASELINE_PE_H

#include <vector>

#include "pe/pe_common.h"

namespace fpraker {

/** Timing/activity statistics of a baseline PE. */
struct BaselinePeStats
{
    uint64_t cycles = 0;
    uint64_t sets = 0;
    uint64_t macs = 0;
    /** MACs with at least one zero operand (power-gating candidates). */
    uint64_t ineffectualMacs = 0;

    void
    merge(const BaselinePeStats &o)
    {
        cycles += o.cycles;
        sets += o.sets;
        macs += o.macs;
        ineffectualMacs += o.ineffectualMacs;
    }
};

/**
 * A pre-decoded operand vector (sign / exponent / significand / zero
 * per lane). In a tile, every PE of a row shares one B vector and
 * every PE of a column shares one A vector — decoding each vector once
 * per step and fanning the result across the grid is what turns the
 * naive per-PE walk into the batched row walk (BaselineTile::run).
 */
struct DecodedOperands
{
    static constexpr int kMaxLanes = 16;

    int16_t exp[kMaxLanes] = {}; //!< Unbiased exponent.
    int16_t sig[kMaxLanes] = {}; //!< Significand with hidden bit (0 if zero).
    bool neg[kMaxLanes] = {};
    bool zero[kMaxLanes] = {};
};

/**
 * 8-wide bit-parallel bfloat16 MAC PE with chunk-based accumulation.
 */
class BaselinePe
{
  public:
    explicit BaselinePe(const PeConfig &cfg = PeConfig{});

    /**
     * Process one set of @p n = lanes pairs. Always one cycle.
     * @return cycles consumed (1).
     */
    int processSet(const MacPair *pairs, int n);

    /**
     * Decode @p n lanes of operands (rejecting non-finite values) for
     * processDecoded. A tile calls this once per shared row/column
     * vector per step.
     */
    static void decode(const BFloat16 *v, int n, DecodedOperands &out);

    /**
     * processSet on pre-decoded operand vectors (lane l multiplies
     * a.lane[l] by b.lane[l]). Bit-identical to processSet — it IS the
     * arithmetic path processSet routes through.
     */
    int processDecoded(const DecodedOperands &a, const DecodedOperands &b);

    /** Accumulate a full dot product, lanes pairs per cycle. */
    int dot(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b);

    ChunkedAccumulator &accumulator() { return acc_; }
    const ChunkedAccumulator &accumulator() const { return acc_; }

    float resultFloat() const { return acc_.total(); }
    BFloat16
    resultBF16() const
    {
        return BFloat16::fromFloat(acc_.total());
    }

    const BaselinePeStats &stats() const { return stats_; }
    void clearStats() { stats_ = BaselinePeStats{}; }
    void reset() { acc_.reset(); }

    const PeConfig &config() const { return cfg_; }

  private:
    PeConfig cfg_;
    ChunkedAccumulator acc_;
    BaselinePeStats stats_;
};

} // namespace fpraker

#endif // FPRAKER_PE_BASELINE_PE_H
