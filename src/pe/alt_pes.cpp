#include "pe/alt_pes.h"

#include <algorithm>

#include "common/logging.h"

namespace fpraker {

PeConfig
bitPragmaticFpConfig()
{
    PeConfig cfg;
    // Full-range shifters: every pending term fires every cycle, no
    // matter how far its alignment sits from the others'.
    cfg.maxDelta = 1 << 20;
    // No out-of-bounds feedback to the encoders.
    cfg.skipOutOfBounds = false;
    // A private exponent block per PE: sets can retire every cycle.
    cfg.exponentFloor = 1;
    cfg.encoding = TermEncoding::Canonical;
    return cfg;
}

LaconicFpPe::LaconicFpPe(const PeConfig &cfg)
    : cfg_(cfg), encoder_(cfg.encoding), acc_(cfg.acc)
{
    panic_if(cfg_.lanes < 1 || cfg_.lanes > ExponentBlockResult::kMaxLanes,
             "unsupported lane count %d", cfg_.lanes);
}

int
LaconicFpPe::processSet(const MacPair *pairs, int n)
{
    panic_if(n != cfg_.lanes, "set arity %d does not match PE lanes %d",
             n, cfg_.lanes);

    // Each lane owns terms(A) x terms(B) one-bit products; the set
    // completes when the slowest lane drains. Functionally every term
    // pair contributes +/-2^(Ae+Be-ta-tb) exactly.
    int max_pairs = 0;
    for (int l = 0; l < n; ++l) {
        const MacPair &p = pairs[l];
        panic_if(!p.a.isFinite() || !p.b.isFinite(),
                 "non-finite operand in Laconic PE");
        if (p.a.isZero() || p.b.isZero())
            continue;
        TermStream ta = encoder_.encode(p.a);
        TermStream tb = encoder_.encode(p.b);
        int pair_count = ta.size() * tb.size();
        max_pairs = std::max(max_pairs, pair_count);
        stats_.termPairs += static_cast<uint64_t>(pair_count);

        bool prod_neg = p.a.isNegative() != p.b.isNegative();
        int ab_exp = p.a.unbiasedExponent() + p.b.unbiasedExponent();
        for (int i = 0; i < ta.size(); ++i) {
            for (int j = 0; j < tb.size(); ++j) {
                // Value = +/- 2^(ab_exp - ta - tb); lsb_exp carries the
                // whole magnitude as a single bit.
                bool neg = prod_neg != (ta[i].neg != tb[j].neg);
                int lsb = ab_exp - ta[i].shift - tb[j].shift;
                acc_.chunkRegister().addValue(neg, lsb, 1);
            }
        }
    }
    acc_.tickMacs(n);

    int cycles = std::max(1, max_pairs);
    stats_.cycles += static_cast<uint64_t>(cycles);
    stats_.sets += 1;
    stats_.macs += static_cast<uint64_t>(n);
    return cycles;
}

int
LaconicFpPe::dot(const std::vector<BFloat16> &a,
                 const std::vector<BFloat16> &b)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    int cycles = 0;
    for (size_t i = 0; i < a.size(); i += static_cast<size_t>(cfg_.lanes)) {
        MacPair pairs[ExponentBlockResult::kMaxLanes] = {};
        for (int l = 0; l < cfg_.lanes; ++l) {
            size_t idx = i + static_cast<size_t>(l);
            if (idx < a.size())
                pairs[l] = MacPair{a[idx], b[idx]};
        }
        cycles += processSet(pairs, cfg_.lanes);
    }
    return cycles;
}

} // namespace fpraker
