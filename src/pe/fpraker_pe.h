/**
 * @file
 * The FPRaker processing element — the paper's core contribution.
 *
 * An FPRaker PE multiplies 8 bfloat16 (A, B) pairs concurrently and
 * accumulates the result into an extended-precision accumulator. The A
 * significands are recoded on the fly into streams of signed powers of
 * two (terms) and processed term-serially, most-significant first:
 *
 *  - Block 1 (exponent): once per set, product exponents Ae+Be are formed
 *    and compared (with the accumulator exponent) to find emax; the
 *    accumulator is aligned up to emax.
 *  - Block 2 (shift & reduce): each cycle, every lane's pending term
 *    yields an alignment shift k = e_acc - (Ae+Be) + t. A per-cycle base
 *    shift is set to the minimum k; lanes within maxDelta (3) of the base
 *    fire, shifting their B significand by k - base into a small adder
 *    tree whose output the shared base shifter aligns with the
 *    accumulator. Lanes further out stall one cycle (shift-range stall).
 *  - Block 3 (accumulate): the reduced partial sum is added to the
 *    accumulator, which is normalized and rounded (RNE) every step.
 *
 * Terms whose k exceeds the accumulator precision are out-of-bounds: they
 * cannot affect the result, so the lane signals its term encoder and the
 * remainder of the stream is skipped (OB skipping). Because zero operands
 * carry all-zero exponent fields, zero-valued B operands also retire
 * through the OB path.
 *
 * FPRakerColumn models a *column* of PEs that share one A stream and its
 * term encoders (as in the tile): term consumption is lockstepped, and a
 * lane's stream is dropped only when every PE in the column flags it
 * out-of-bounds. FPRakerPe is the single-PE convenience wrapper.
 *
 * Implementation notes (the simulator, not the hardware): the model is
 * bit-identical to the seed algorithm (ReferenceColumn in src/sim/) but
 * restructured for host speed. Lane term streams are read-only pointers
 * into the shared TermLut instead of per-set encoder runs; fired /
 * out-of-bounds flags are per-PE bitmasks; and the encoder-feedback
 * fixpoint (settle) drains each lane independently instead of
 * rescanning every (PE, lane) pair per iteration — legal because the
 * accumulator exponents are constant between processing cycles, which
 * makes lanes independent inside a settle pass.
 */

#ifndef FPRAKER_PE_FPRAKER_PE_H
#define FPRAKER_PE_FPRAKER_PE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "numeric/term_lut.h"
#include "numeric/value_lut.h"
#include "pe/exponent_block.h"
#include "pe/pe_common.h"

namespace fpraker {

/** Per-cycle trace record for walkthroughs and deep tests. */
struct PeCycleTrace
{
    /** What a lane did in a traced cycle. */
    enum class LaneAction
    {
        Fired,      //!< Term processed this cycle.
        ShiftStall, //!< Pending term outside the base+maxDelta window.
        Idle,       //!< No term pending (exhausted, fired, or waiting).
        ObRetired,  //!< Lane dropped as out-of-bounds this cycle.
    };

    int cycle = 0; //!< Cycle index within the current set (from 1).
    int pe = 0;    //!< PE (row) index within the column.
    int base = 0;  //!< Base shift chosen this cycle (k of nearest lane).
    int accExp = 0;
    std::vector<LaneAction> action; //!< Per lane.
    std::vector<int> k;             //!< Per lane (valid unless Idle).
};

/**
 * A vertical group of FPRaker PEs sharing one serial-operand stream.
 */
class FPRakerColumn
{
  public:
    /**
     * @param cfg     PE parameters (shared by all PEs in the column)
     * @param num_pes number of PEs (rows) sharing the A stream
     */
    FPRakerColumn(const PeConfig &cfg, int num_pes);

    /**
     * One parallel-operand row, decoded once: in a tile every column
     * of a step consumes the same broadcast B rows, so the per-value
     * field split (exponent, significand, sign, zero/finite check)
     * runs once per row instead of once per (row, column). Layouts
     * are chosen so the vectorized beginSetDecoded path loads them
     * directly; zero16 lanes are 0 / -1 masks.
     */
    struct DecodedBRow
    {
        alignas(32) int16_t beBiased[ExponentBlockResult::kMaxLanes];
        alignas(32) int16_t zero16[ExponentBlockResult::kMaxLanes];
        uint8_t sig[ExponentBlockResult::kMaxLanes];
        uint32_t negMask = 0;
    };

    /**
     * Decode @p rows parallel-operand rows (row r lane l at
     * b[r * b_stride + l], @p lanes lanes each) into @p out. Performs
     * the finite-operand panic, so beginSetDecoded can skip it.
     */
    static void decodeBRows(const BFloat16 *b, int b_stride, int rows,
                            int lanes, DecodedBRow *out);

    /**
     * Start a new operand set.
     *
     * @param a        cfg.lanes serial operands, shared by every PE
     * @param b        parallel operands, PE r lane l at b[r*b_stride + l]
     * @param b_stride row stride within @p b
     * @param active_lanes lanes carrying real operands (< 0: all).
     *        Ragged dot-product tails pass the true count so padded
     *        lanes contribute neither cycles nor statistics.
     */
    void beginSet(const BFloat16 *a, const BFloat16 *b, int b_stride,
                  int active_lanes = -1);

    /**
     * beginSet against pre-decoded parallel operands: @p brows holds
     * numPes() rows from decodeBRows. Bit-identical to beginSet; the
     * tile uses this to share one B decode across all its columns.
     */
    void beginSetDecoded(const BFloat16 *a, const DecodedBRow *brows,
                         int active_lanes = -1);

    /** True while the current set still has terms to process. */
    bool busy() const;

    /** Advance one processing cycle (no-op when not busy). */
    void stepCycle();

    /**
     * Run the current set to completion and apply the exponent-block
     * floor. @return cycles consumed by the set.
     */
    int finishSet();

    /** Convenience: beginSet + finishSet. */
    int
    runSet(const BFloat16 *a, const BFloat16 *b, int b_stride,
           int active_lanes = -1)
    {
        beginSet(a, b, b_stride, active_lanes);
        return finishSet();
    }

    /**
     * Accumulate a full dot product for every PE of the column:
     * config().lanes pairs per set, PE r's parallel operands at
     * b[r * b_stride + i]. The batched walk decodes the B operands a
     * whole chunk of sets at a time (amortizing the operand decode
     * across the row dimension) before simulating the sets; ragged
     * tails run as masked sets. Bit-identical to per-set runSet calls.
     * @return total cycles.
     */
    int dot(const BFloat16 *a, const BFloat16 *b, int b_stride,
            size_t len);

    /** Charge tile-level broadcast-wait cycles to every lane. */
    void chargeInterPeStall(int cycles);

    /** Accumulator of PE @p pe. */
    ChunkedAccumulator &accumulator(int pe);
    const ChunkedAccumulator &accumulator(int pe) const;

    /** Reset all accumulators (new output block). */
    void resetAccumulators();

    /** Statistics of PE @p pe. */
    const PeStats &stats(int pe) const;

    /** Column-aggregate statistics. */
    PeStats aggregateStats() const;

    /** Clear statistics. */
    void clearStats();

    /** Install a per-cycle trace observer (nullptr to remove). */
    void
    setTraceCallback(std::function<void(const PeCycleTrace &)> cb)
    {
        trace_ = std::move(cb);
    }

    int numPes() const { return numPes_; }
    const PeConfig &config() const { return cfg_; }

  private:
    static constexpr int kMaxLanes = ExponentBlockResult::kMaxLanes;

    /** Shared per-lane term stream state: a view into the TermLut. */
    struct LaneStream
    {
        const TermStream *terms = nullptr;
        int cursor = 0;
    };

    /** Per-PE state; lane-indexed fields are packed for mask scans. */
    struct PeState
    {
        ChunkedAccumulator acc;
        PeStats stats;
        int16_t abExp[kMaxLanes] = {};  //!< Product exponent per lane.
        uint8_t bSig[kMaxLanes] = {};   //!< B significand per lane.
        uint32_t prodNegMask = 0;       //!< Product-sign bit per lane.
        uint32_t firedMask = 0;         //!< Consumed the cursor term.
        uint32_t obMask = 0;            //!< Stream remainder dropped.

        explicit PeState(const AccumulatorConfig &acc_cfg)
            : acc(acc_cfg)
        {}
    };

    /**
     * Retire out-of-bounds lanes and advance fully-consumed cursors to
     * a fixpoint, for the lanes in @p mask. Both are encoder feedback
     * paths, not datapath work: they consume no processing cycles.
     * Accumulator exponents are constant while settling, so each live
     * lane drains independently — and a lane can only need settling
     * when it fired or when some accumulator exponent moved, which is
     * what lets stepCycle pass a narrow mask.
     */
    void settle(uint32_t mask);

    /** Drain one lane to its settle fixpoint. @p thr is the OB bound. */
    void settleLane(int l, int thr);

    /** Cold path: build and deliver one PE's cycle trace record. */
    void emitTrace(int r, int acc_exp, int base, uint32_t pend,
                   uint32_t fire, const int *k_of) const;

    /**
     * Re-derive the per-PE "all lanes retired" summary bits after
     * obMask / liveMask changed. A PE whose still-live lanes are all
     * in its obMask can never fire again this set (liveMask only
     * shrinks, obMask only grows), so stepCycle and settleLane skip it
     * and finishSet charges its remaining no-term lane-cycles in one
     * deferred multiply — bit-identical to the per-cycle charges.
     */
    void refreshRetired();

    PeConfig cfg_;
    int numPes_;
    const TermLut *lut_;
    const ValueLut *vlut_; //!< Whole-bf16 decode table (value memo).
    std::vector<DecodedBRow> decodeScratch_; //!< beginSet / dot rows.
    LaneStream streams_[kMaxLanes];
    /**
     * Cursor-term cache: the shift and sign of each live lane's
     * pending term, refreshed whenever a cursor advances. stepCycle
     * reads these instead of chasing stream pointers every cycle.
     */
    int8_t curShift_[kMaxLanes] = {};
    uint32_t curNegMask_ = 0;
    /**
     * Transposed lane state: for lane l, the set of PEs (as bits) that
     * have fired its cursor term / dropped its stream. Kept in sync
     * with the per-PE firedMask/obMask so the settle fixpoint resolves
     * a term's column-wide status with mask compares instead of a
     * per-PE scan. Bounds the column at 64 PEs (enforced in the ctor).
     */
    uint64_t firedPes_[kMaxLanes] = {};
    uint64_t obPes_[kMaxLanes] = {};
    uint64_t peAll_ = 0; //!< Bit per PE.
    std::vector<PeState> pes_;
    std::vector<int> retireCycle_;   //!< Cycle a PE fully retired at.
    std::function<void(const PeCycleTrace &)> trace_;
    uint32_t liveMask_ = 0; //!< Lanes whose stream is not exhausted.
    uint64_t retiredPeMask_ = 0; //!< PEs with every live lane retired.
    bool retireSkip_ = false;    //!< Summary-bit skip enabled this set.
    bool settleDirty_ = false;   //!< Settle changed obMask / liveMask.
    int activeLanes_ = 0;   //!< Lanes carrying real operands this set.
    int setCycles_ = 0;
    bool inSet_ = false;
};

/**
 * A standalone FPRaker PE (a column of one). The quickstart-facing API:
 * feed 8-pair sets, read cycles, stats, and the accumulated value.
 */
class FPRakerPe
{
  public:
    explicit FPRakerPe(const PeConfig &cfg = PeConfig{});

    /**
     * Process one set of @p n = cfg.lanes operand pairs to completion.
     * @return cycles the set consumed.
     */
    int processSet(const MacPair *pairs, int n);

    /**
     * Accumulate a full dot product, 8 (lanes) pairs per set. Ragged
     * tails run as masked sets: the padded lanes are architecturally
     * absent and contribute neither cycles nor statistics.
     * @return total cycles.
     */
    int dot(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b);

    ChunkedAccumulator &accumulator() { return column_.accumulator(0); }
    const ChunkedAccumulator &
    accumulator() const
    {
        return column_.accumulator(0);
    }

    /** Result so far as bfloat16 / float. */
    BFloat16
    resultBF16() const
    {
        return BFloat16::fromFloat(accumulator().total());
    }
    float resultFloat() const { return accumulator().total(); }

    const PeStats &stats() const { return column_.stats(0); }
    void clearStats() { column_.clearStats(); }
    void reset() { column_.resetAccumulators(); }

    void
    setTraceCallback(std::function<void(const PeCycleTrace &)> cb)
    {
        column_.setTraceCallback(std::move(cb));
    }

    const PeConfig &config() const { return column_.config(); }

  private:
    FPRakerColumn column_;
};

} // namespace fpraker

#endif // FPRAKER_PE_FPRAKER_PE_H
