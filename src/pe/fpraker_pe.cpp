#include "pe/fpraker_pe.h"

#include <algorithm>
#include <climits>

#include "common/logging.h"

namespace fpraker {

FPRakerColumn::FPRakerColumn(const PeConfig &cfg, int num_pes)
    : cfg_(cfg), numPes_(num_pes), encoder_(cfg.encoding)
{
    panic_if(cfg_.lanes < 1 || cfg_.lanes > ExponentBlockResult::kMaxLanes,
             "unsupported lane count %d", cfg_.lanes);
    panic_if(numPes_ < 1, "column needs at least one PE");
    panic_if(cfg_.maxDelta < 0, "negative shifter window");
    streams_.resize(static_cast<size_t>(cfg_.lanes));
    peLanes_.resize(static_cast<size_t>(numPes_) * cfg_.lanes);
    pes_.reserve(static_cast<size_t>(numPes_));
    for (int r = 0; r < numPes_; ++r)
        pes_.push_back(PeState{ChunkedAccumulator(cfg_.acc), PeStats{}});
}

void
FPRakerColumn::beginSet(const BFloat16 *a, const BFloat16 *b, int b_stride)
{
    panic_if(inSet_, "beginSet while a set is in flight");

    for (int l = 0; l < cfg_.lanes; ++l) {
        streams_[l].terms = encoder_.encode(a[l]);
        streams_[l].cursor = 0;
    }

    for (int r = 0; r < numPes_; ++r) {
        PeState &pe = pes_[r];
        MacPair pairs[ExponentBlockResult::kMaxLanes];
        for (int l = 0; l < cfg_.lanes; ++l)
            pairs[l] = MacPair{a[l], b[r * b_stride + l]};

        ExponentBlockResult ebr = ExponentBlock::compute(
            pairs, cfg_.lanes, pe.acc.chunkRegister().exponent());
        pe.acc.chunkRegister().alignTo(ebr.emax);

        for (int l = 0; l < cfg_.lanes; ++l) {
            PeLane &pl = lane(r, l);
            pl.abExp = ebr.abExp[l];
            pl.prodNeg = ebr.prodNeg[l];
            pl.bSig = pairs[l].b.significand();
            pl.fired = false;
            pl.obDone = false;
            pe.stats.termsZeroSkipped += static_cast<uint64_t>(
                kTermSlots - streams_[l].terms.size());
        }
        pe.stats.sets += 1;
        pe.stats.macs += static_cast<uint64_t>(cfg_.lanes);
    }

    setCycles_ = 0;
    inSet_ = true;
}

void
FPRakerColumn::scanOutOfBounds()
{
    if (!cfg_.skipOutOfBounds)
        return;
    const int thr = cfg_.effectiveObThreshold();
    for (int r = 0; r < numPes_; ++r) {
        int acc_exp = pes_[r].acc.chunkRegister().exponent();
        for (int l = 0; l < cfg_.lanes; ++l) {
            LaneStream &s = streams_[l];
            PeLane &pl = lane(r, l);
            if (pl.obDone || pl.fired || s.cursor >= s.terms.size())
                continue;
            int k = acc_exp - pl.abExp + s.terms[s.cursor].shift;
            if (k > thr) {
                // Terms stream MSB-first, so every remaining term of
                // this pair is guaranteed out-of-bounds too.
                pl.obDone = true;
                pes_[r].stats.termsObSkipped += static_cast<uint64_t>(
                    s.terms.size() - s.cursor);
            }
        }
    }
}

bool
FPRakerColumn::advanceCursors()
{
    bool progress = false;
    for (int l = 0; l < cfg_.lanes; ++l) {
        LaneStream &s = streams_[l];
        if (s.cursor >= s.terms.size())
            continue;
        bool all_consumed = true;
        bool all_ob = true;
        for (int r = 0; r < numPes_; ++r) {
            const PeLane &pl = lane(r, l);
            all_consumed &= pl.fired || pl.obDone;
            all_ob &= pl.obDone;
        }
        if (!all_consumed)
            continue;
        if (all_ob) {
            // The shared encoder drops the rest of the stream once every
            // PE in the column has flagged the lane.
            s.cursor = s.terms.size();
        } else {
            ++s.cursor;
            for (int r = 0; r < numPes_; ++r)
                lane(r, l).fired = false;
        }
        progress = true;
    }
    return progress;
}

void
FPRakerColumn::settle()
{
    do {
        scanOutOfBounds();
    } while (advanceCursors());
}

bool
FPRakerColumn::allStreamsDone() const
{
    for (int l = 0; l < cfg_.lanes; ++l)
        if (streams_[l].cursor < streams_[l].terms.size())
            return false;
    return true;
}

bool
FPRakerColumn::busy() const
{
    return inSet_ && !allStreamsDone();
}

void
FPRakerColumn::stepCycle()
{
    if (!inSet_)
        return;

    // Out-of-bounds retirement is a feedback signal to the encoders, not
    // a datapath operation: it consumes no processing cycle.
    settle();
    if (allStreamsDone())
        return;

    ++setCycles_;

    for (int r = 0; r < numPes_; ++r) {
        PeState &pe = pes_[r];
        int acc_exp = pe.acc.chunkRegister().exponent();

        // Pass 1: collect pending lanes and the base shift.
        int k_of[ExponentBlockResult::kMaxLanes];
        bool pending[ExponentBlockResult::kMaxLanes];
        int base = INT_MAX;
        for (int l = 0; l < cfg_.lanes; ++l) {
            const LaneStream &s = streams_[l];
            const PeLane &pl = lane(r, l);
            pending[l] = !pl.fired && !pl.obDone &&
                         s.cursor < s.terms.size();
            if (pending[l]) {
                k_of[l] = acc_exp - pl.abExp + s.terms[s.cursor].shift;
                if (k_of[l] < base)
                    base = k_of[l];
            }
        }

        PeCycleTrace tr;
        const bool tracing = static_cast<bool>(trace_);
        if (tracing) {
            tr.cycle = setCycles_;
            tr.pe = r;
            tr.base = base == INT_MAX ? 0 : base;
            tr.accExp = acc_exp;
            tr.action.assign(static_cast<size_t>(cfg_.lanes),
                             PeCycleTrace::LaneAction::Idle);
            tr.k.assign(static_cast<size_t>(cfg_.lanes), 0);
        }

        if (base == INT_MAX) {
            // Nothing to do for this PE this cycle: every lane is either
            // exhausted, retired, or waiting for a sibling PE.
            pe.stats.laneNoTerm += static_cast<uint64_t>(cfg_.lanes);
            if (tracing)
                trace_(tr);
            continue;
        }

        // Pass 2: fire lanes inside the shifter window and reduce their
        // contributions exactly (the adder tree), then accumulate. The
        // exact int64 tree covers spreads up to 48 bits — far beyond
        // FPRaker's 3-position window; wider configurations (the
        // Bit-Pragmatic comparison PE has unrestricted shifters) fall
        // back to per-contribution accumulation.
        int lsb_min = INT_MAX;
        int lsb_max = INT_MIN;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (!pending[l] || k_of[l] - base > cfg_.maxDelta)
                continue;
            // lsb exponent of this contribution: (Ae+Be) - t - 7. Using
            // k: lsb = acc_exp - k - 7, so within the window the spread
            // is at most maxDelta bits.
            int lsb = acc_exp - k_of[l] - 7;
            lsb_min = std::min(lsb_min, lsb);
            lsb_max = std::max(lsb_max, lsb);
        }
        const bool exact_tree =
            lsb_min == INT_MAX || lsb_max - lsb_min <= 48;
        int64_t sum = 0;
        for (int l = 0; l < cfg_.lanes; ++l) {
            const LaneStream &s = streams_[l];
            PeLane &pl = lane(r, l);
            if (!pending[l]) {
                pe.stats.laneNoTerm += 1;
                continue;
            }
            if (k_of[l] - base > cfg_.maxDelta) {
                pe.stats.laneShiftRange += 1;
                if (tracing) {
                    tr.action[static_cast<size_t>(l)] =
                        PeCycleTrace::LaneAction::ShiftStall;
                    tr.k[static_cast<size_t>(l)] = k_of[l];
                }
                continue;
            }
            const Term &t = s.terms[s.cursor];
            int lsb = acc_exp - k_of[l] - 7;
            bool neg = pl.prodNeg != t.neg;
            if (exact_tree) {
                int64_t contrib = static_cast<int64_t>(pl.bSig)
                                  << (lsb - lsb_min);
                sum += neg ? -contrib : contrib;
            } else if (pl.bSig != 0) {
                pe.acc.chunkRegister().addValue(
                    neg, lsb, static_cast<uint64_t>(pl.bSig));
            }
            pl.fired = true;
            pe.stats.laneUseful += 1;
            pe.stats.termsProcessed += 1;
            if (tracing) {
                tr.action[static_cast<size_t>(l)] =
                    PeCycleTrace::LaneAction::Fired;
                tr.k[static_cast<size_t>(l)] = k_of[l];
            }
        }
        if (sum != 0) {
            pe.acc.chunkRegister().addValue(
                sum < 0, lsb_min,
                static_cast<uint64_t>(sum < 0 ? -sum : sum));
        }
        if (tracing)
            trace_(tr);
    }

    settle();
}

int
FPRakerColumn::finishSet()
{
    panic_if(!inSet_, "finishSet without beginSet");
    // An entire set may be OB-retired before any processing cycle runs.
    settle();
    while (busy())
        stepCycle();

    int cycles = setCycles_;
    if (cycles < cfg_.exponentFloor) {
        int floor_add = cfg_.exponentFloor - cycles;
        for (int r = 0; r < numPes_; ++r)
            pes_[r].stats.laneExponent +=
                static_cast<uint64_t>(floor_add) * cfg_.lanes;
        cycles = cfg_.exponentFloor;
    }
    for (int r = 0; r < numPes_; ++r) {
        pes_[r].stats.setCycles += static_cast<uint64_t>(cycles);
        pes_[r].acc.tickMacs(cfg_.lanes);
    }
    inSet_ = false;
    return cycles;
}

void
FPRakerColumn::chargeInterPeStall(int cycles)
{
    panic_if(cycles < 0, "negative stall charge");
    for (int r = 0; r < numPes_; ++r) {
        pes_[r].stats.laneInterPe +=
            static_cast<uint64_t>(cycles) * cfg_.lanes;
        pes_[r].stats.setCycles += static_cast<uint64_t>(cycles);
    }
}

ChunkedAccumulator &
FPRakerColumn::accumulator(int pe)
{
    return pes_[static_cast<size_t>(pe)].acc;
}

const ChunkedAccumulator &
FPRakerColumn::accumulator(int pe) const
{
    return pes_[static_cast<size_t>(pe)].acc;
}

void
FPRakerColumn::resetAccumulators()
{
    for (auto &pe : pes_)
        pe.acc.reset();
}

const PeStats &
FPRakerColumn::stats(int pe) const
{
    return pes_[static_cast<size_t>(pe)].stats;
}

PeStats
FPRakerColumn::aggregateStats() const
{
    PeStats agg;
    for (const auto &pe : pes_)
        agg.merge(pe.stats);
    return agg;
}

void
FPRakerColumn::clearStats()
{
    for (auto &pe : pes_)
        pe.stats = PeStats{};
}

FPRakerPe::FPRakerPe(const PeConfig &cfg)
    : column_(cfg, 1)
{
}

int
FPRakerPe::processSet(const MacPair *pairs, int n)
{
    panic_if(n != column_.config().lanes,
             "set arity %d does not match PE lanes %d", n,
             column_.config().lanes);
    BFloat16 a[ExponentBlockResult::kMaxLanes];
    BFloat16 b[ExponentBlockResult::kMaxLanes];
    for (int l = 0; l < n; ++l) {
        a[l] = pairs[l].a;
        b[l] = pairs[l].b;
    }
    return column_.runSet(a, b, n);
}

int
FPRakerPe::dot(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    const int lanes = column_.config().lanes;
    int cycles = 0;
    for (size_t i = 0; i < a.size(); i += static_cast<size_t>(lanes)) {
        MacPair pairs[ExponentBlockResult::kMaxLanes] = {};
        for (int l = 0; l < lanes; ++l) {
            size_t idx = i + static_cast<size_t>(l);
            if (idx < a.size())
                pairs[l] = MacPair{a[idx], b[idx]};
        }
        cycles += processSet(pairs, lanes);
    }
    return cycles;
}

} // namespace fpraker
