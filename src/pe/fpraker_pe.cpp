#include "pe/fpraker_pe.h"

#include <algorithm>
#include <bit>
#include <climits>
#include <cstring>

#ifdef __SSE2__
#include <emmintrin.h>
#endif

#include "common/logging.h"

namespace fpraker {

FPRakerColumn::FPRakerColumn(const PeConfig &cfg, int num_pes)
    : cfg_(cfg), numPes_(num_pes), lut_(&TermLut::of(cfg.encoding)),
      vlut_(&ValueLut::of(cfg.encoding))
{
    panic_if(cfg_.lanes < 1 || cfg_.lanes > kMaxLanes,
             "unsupported lane count %d", cfg_.lanes);
    panic_if(numPes_ < 1, "column needs at least one PE");
    panic_if(numPes_ > 64,
             "column of %d PEs exceeds the 64-PE transposed-mask limit",
             numPes_);
    panic_if(cfg_.maxDelta < 0, "negative shifter window");
    peAll_ = numPes_ == 64 ? ~0ull : (1ull << numPes_) - 1;
    pes_.reserve(static_cast<size_t>(numPes_));
    for (int r = 0; r < numPes_; ++r)
        pes_.emplace_back(cfg_.acc);
    retireCycle_.resize(static_cast<size_t>(numPes_));
}

void
FPRakerColumn::beginSet(const BFloat16 *a, const BFloat16 *b,
                        int b_stride, int active_lanes)
{
    const int lanes = active_lanes < 0 ? cfg_.lanes : active_lanes;
    panic_if(lanes < 1 || lanes > cfg_.lanes,
             "bad active lane count %d", lanes);
    decodeScratch_.resize(static_cast<size_t>(numPes_));
    decodeBRows(b, b_stride, numPes_, lanes, decodeScratch_.data());
    beginSetDecoded(a, decodeScratch_.data(), lanes);
}

void
FPRakerColumn::decodeBRows(const BFloat16 *b, int b_stride, int rows,
                           int lanes, DecodedBRow *out)
{
#ifdef __SSE2__
    // Vector fast path for full 8-lane rows: the whole per-row field
    // split (zero/finite classification, exponent, significand, sign)
    // is 8 x 16-bit data — one SSE register per row. Integer-exact,
    // so bit-identical to the scalar path below.
    if (lanes == 8) {
        const __m128i vzero128 = _mm_setzero_si128();
        for (int r = 0; r < rows; ++r) {
            DecodedBRow &dr = out[r];
            const BFloat16 *brow =
                b + static_cast<size_t>(r) * b_stride;
            __m128i vb;
            std::memcpy(&vb, brow, 16);

            const __m128i vexpf =
                _mm_and_si128(vb, _mm_set1_epi16(0x7f80));
            if (_mm_movemask_epi8(_mm_cmpeq_epi16(
                    vexpf, _mm_set1_epi16(0x7f80)))) {
                for (int l = 0; l < 8; ++l)
                    panic_if(!brow[l].isFinite(),
                             "non-finite PE operand (b=%04x)",
                             brow[l].bits());
            }

            const __m128i vbzero = _mm_cmpeq_epi16(
                _mm_and_si128(vb, _mm_set1_epi16(0x7fff)), vzero128);
            const __m128i vbe = _mm_and_si128(_mm_srli_epi16(vb, 7),
                                              _mm_set1_epi16(0xff));
            _mm_store_si128(
                reinterpret_cast<__m128i *>(dr.beBiased), vbe);
            _mm_store_si128(
                reinterpret_cast<__m128i *>(dr.zero16), vbzero);
            const __m128i vsig16 = _mm_andnot_si128(
                vbzero,
                _mm_or_si128(_mm_and_si128(vb, _mm_set1_epi16(0x7f)),
                             _mm_set1_epi16(0x80)));
            _mm_storel_epi64(reinterpret_cast<__m128i *>(dr.sig),
                             _mm_packus_epi16(vsig16, vzero128));
            dr.negMask = static_cast<uint32_t>(
                _mm_movemask_epi8(_mm_packs_epi16(
                    _mm_srai_epi16(vb, 15), vzero128)));
        }
        return;
    }
#endif // __SSE2__
    // Scalar fallback: the whole per-value field split is one load
    // from the decoded-value table (the value memoization grain; the
    // B-side fields are encoding-independent).
    const ValueLut &vlut = ValueLut::bDecode();
    for (int r = 0; r < rows; ++r) {
        DecodedBRow &dr = out[r];
        const BFloat16 *brow = b + static_cast<size_t>(r) * b_stride;
        dr.negMask = 0;
        for (int l = 0; l < lanes; ++l) {
            const ValueLut::Entry &e = vlut.entry(brow[l].bits());
            panic_if(!(e.flags & ValueLut::kFinite),
                     "non-finite PE operand (b=%04x)", brow[l].bits());
            dr.beBiased[l] = e.biasedExp;
            dr.zero16[l] =
                (e.flags & ValueLut::kZero) ? int16_t(-1) : int16_t(0);
            dr.sig[l] = e.sig;
            if (e.flags & ValueLut::kNegative)
                dr.negMask |= 1u << l;
        }
    }
}

void
FPRakerColumn::beginSetDecoded(const BFloat16 *a,
                               const DecodedBRow *brows,
                               int active_lanes)
{
    panic_if(inSet_, "beginSet while a set is in flight");
    activeLanes_ = active_lanes < 0 ? cfg_.lanes : active_lanes;
    panic_if(activeLanes_ < 1 || activeLanes_ > cfg_.lanes,
             "bad active lane count %d", activeLanes_);

    // The serial operands are shared by every PE in the column: hoist
    // their exponents, signs, and term streams out of the per-PE loop.
    int16_t a_exp[kMaxLanes];
    int8_t shift0[kMaxLanes];  //!< First-term shift of live lanes.
    uint8_t nterms[kMaxLanes]; //!< Stream length per lane.
    uint32_t a_neg = 0;
    uint32_t a_nonzero = 0;
    uint64_t zero_slots = 0;
    liveMask_ = 0;
    for (int l = 0; l < activeLanes_; ++l) {
        // The value memoization grain: every field this loop used to
        // re-derive per value (term schedule, exponents, sign/zero
        // class, first-term shift) is one decoded-table load.
        const ValueLut::Entry &e = vlut_->entry(a[l].bits());
        panic_if(!(e.flags & ValueLut::kFinite),
                 "non-finite PE operand (a=%04x)", a[l].bits());
        streams_[l].terms = e.stream;
        streams_[l].cursor = 0;
        nterms[l] = e.nterms;
        if (e.nterms) {
            liveMask_ |= 1u << l;
            shift0[l] = e.shift0;
        }
        a_exp[l] = e.unbiasedExp;
        if (e.flags & ValueLut::kNegative)
            a_neg |= 1u << l;
        if (!(e.flags & ValueLut::kZero))
            a_nonzero |= 1u << l;
        zero_slots += static_cast<uint64_t>(kTermSlots - e.nterms);
        firedPes_[l] = 0;
        obPes_[l] = 0;
    }

    // The post-set settle is folded in: before any term fires the only
    // possible encoder feedback is a first-term out-of-bounds flag (and
    // the consensus drop when every PE raises it), so both are resolved
    // here and the set starts settled.
    const int thr =
        cfg_.skipOutOfBounds ? cfg_.effectiveObThreshold() : INT_MAX;
    uint32_t all_ob = liveMask_;

#ifdef __SSE2__
    // Vector fast path for full 8-lane sets: combining the decoded
    // rows with the column's A stream (product exponents, MAX-tree
    // input, first-term OB compare) is 8 x 16-bit data — one SSE
    // register. Integer-exact, so bit-identical to the scalar path
    // below.
    if (activeLanes_ == 8) {
        const __m128i vzero128 = _mm_setzero_si128();
        __m128i va_exp_m127;
        __m128i va_nonzero16 = vzero128;
        __m128i vshift0_16 = vzero128;
        {
            int16_t tmp[8];
            for (int l = 0; l < 8; ++l)
                tmp[l] = static_cast<int16_t>(a_exp[l] - 127);
            std::memcpy(&va_exp_m127, tmp, 16);
            int16_t nz[8];
            int16_t sh[8];
            for (int l = 0; l < 8; ++l) {
                nz[l] = (a_nonzero >> l) & 1u ? int16_t(-1) : int16_t(0);
                sh[l] = (liveMask_ >> l) & 1u ? shift0[l] : int16_t(0);
            }
            std::memcpy(&va_nonzero16, nz, 16);
            std::memcpy(&vshift0_16, sh, 16);
        }
        const __m128i vthr16 = _mm_set1_epi16(
            static_cast<int16_t>(thr > 16000 ? 16000 : thr));
        const bool do_ob = thr != INT_MAX;

        for (int r = 0; r < numPes_; ++r) {
            PeState &pe = pes_[r];
            const DecodedBRow &dr = brows[r];
            __m128i vbe, vbzero;
            std::memcpy(&vbe, dr.beBiased, 16);
            std::memcpy(&vbzero, dr.zero16, 16);
            const __m128i vab = _mm_add_epi16(va_exp_m127, vbe);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(pe.abExp),
                             vab);
            std::memcpy(pe.bSig, dr.sig, 8);
            pe.prodNegMask = a_neg ^ dr.negMask;
            pe.firedMask = 0;

            int emax = pe.acc.chunkRegister().exponent();
            const __m128i vactive =
                _mm_andnot_si128(vbzero, va_nonzero16);
            if (_mm_movemask_epi8(vactive)) {
                __m128i vm = _mm_or_si128(
                    _mm_and_si128(vactive, vab),
                    _mm_andnot_si128(vactive,
                                     _mm_set1_epi16(INT16_MIN)));
                vm = _mm_max_epi16(vm, _mm_srli_si128(vm, 8));
                vm = _mm_max_epi16(vm, _mm_srli_si128(vm, 4));
                vm = _mm_max_epi16(vm, _mm_srli_si128(vm, 2));
                const int m = static_cast<int16_t>(
                    _mm_extract_epi16(vm, 0));
                if (m > emax)
                    emax = m;
            }
            pe.acc.chunkRegister().alignTo(emax);

            uint32_t ob = 0;
            if (do_ob) {
                const int acc_exp = pe.acc.chunkRegister().exponent();
                if (acc_exp > -16000) {
                    // acc_exp fits int16 here (bfloat16 exponents cap
                    // it near +-300); below -16000 the register is the
                    // zero sentinel and no term can be out-of-bounds.
                    const __m128i vk = _mm_add_epi16(
                        _mm_sub_epi16(
                            _mm_set1_epi16(
                                static_cast<int16_t>(acc_exp)),
                            vab),
                        vshift0_16);
                    ob = static_cast<uint32_t>(_mm_movemask_epi8(
                             _mm_packs_epi16(
                                 _mm_cmpgt_epi16(vk, vthr16),
                                 vzero128))) &
                         liveMask_;
                    for (uint32_t mm = ob; mm; mm &= mm - 1) {
                        const int l = std::countr_zero(mm);
                        pe.stats.termsObSkipped += nterms[l];
                        obPes_[l] |= 1ull << r;
                    }
                }
            }
            pe.obMask = ob;
            all_ob &= ob;

            pe.stats.termsZeroSkipped += zero_slots;
            pe.stats.sets += 1;
            pe.stats.macs += static_cast<uint64_t>(activeLanes_);
        }
    } else
#endif // __SSE2__
    {
        for (int r = 0; r < numPes_; ++r) {
            PeState &pe = pes_[r];
            const DecodedBRow &dr = brows[r];
            int emax = pe.acc.chunkRegister().exponent();
            for (int l = 0; l < activeLanes_; ++l) {
                // Zero operands carry an all-zero exponent field;
                // their product exponents are far below any normal
                // value, so the MAX tree ignores them and the
                // out-of-bounds check retires the lane immediately.
                const int ab = a_exp[l] + dr.beBiased[l] - 127;
                pe.abExp[l] = static_cast<int16_t>(ab);
                pe.bSig[l] = dr.sig[l];
                if (((a_nonzero >> l) & 1u) && dr.zero16[l] == 0 &&
                    ab > emax)
                    emax = ab;
            }
            pe.prodNegMask = a_neg ^ dr.negMask;
            pe.firedMask = 0;
            pe.acc.chunkRegister().alignTo(emax);

            uint32_t ob = 0;
            if (thr != INT_MAX) {
                const int acc_exp = pe.acc.chunkRegister().exponent();
                for (uint32_t m = liveMask_; m; m &= m - 1) {
                    const int l = std::countr_zero(m);
                    if (acc_exp - pe.abExp[l] + shift0[l] > thr) {
                        ob |= 1u << l;
                        pe.stats.termsObSkipped += nterms[l];
                        obPes_[l] |= 1ull << r;
                    }
                }
            }
            pe.obMask = ob;
            all_ob &= ob;

            pe.stats.termsZeroSkipped += zero_slots;
            pe.stats.sets += 1;
            pe.stats.macs += static_cast<uint64_t>(activeLanes_);
        }
    }

    // Consensus drop of lanes every PE flagged on their first term.
    for (uint32_t m = all_ob; m; m &= m - 1) {
        const int l = std::countr_zero(m);
        streams_[l].cursor = streams_[l].terms->size();
    }
    liveMask_ &= ~all_ob;

    // Seed the cursor-term cache for the surviving lanes.
    curNegMask_ = 0;
    for (uint32_t m = liveMask_; m; m &= m - 1) {
        const int l = std::countr_zero(m);
        const Term &t = (*streams_[l].terms)[0];
        curShift_[l] = t.shift;
        if (t.neg)
            curNegMask_ |= 1u << l;
    }

    setCycles_ = 0;
    inSet_ = true;

    // The summary bits are a pure fast path (they are only consulted to
    // skip work whose outcome is already determined), so tracing simply
    // disables them to keep the per-cycle trace stream exact. (The
    // masks bound a column at 64 PEs; the constructor enforces it.)
    retiredPeMask_ = 0;
    retireSkip_ = !trace_;
    if (retireSkip_ && liveMask_)
        refreshRetired();
}

void
FPRakerColumn::refreshRetired()
{
    for (int r = 0; r < numPes_; ++r) {
        if ((retiredPeMask_ >> r) & 1u)
            continue;
        if ((liveMask_ & ~pes_[static_cast<size_t>(r)].obMask) == 0) {
            retiredPeMask_ |= 1ull << r;
            retireCycle_[static_cast<size_t>(r)] = setCycles_;
        }
    }
}

void
FPRakerColumn::settleLane(int l, int thr)
{
    LaneStream &s = streams_[l];
    const TermStream &ts = *s.terms;
    const uint32_t bit = 1u << l;
    for (;;) {
        const int shift = ts[s.cursor].shift;
        // The transposed masks resolve the cursor term's status with
        // mask algebra: only PEs that have neither consumed the term
        // nor dropped the stream still need an out-of-bounds verdict —
        // usually none, because settle runs right after the term fired
        // everywhere it could. Accumulator exponents are constant
        // while settling, so they are read straight off the PEs.
        bool consumed = true;
        for (uint64_t m = peAll_ & ~obPes_[l] & ~firedPes_[l]; m;
             m &= m - 1) {
            const int r = std::countr_zero(m);
            PeState &pe = pes_[static_cast<size_t>(r)];
            const int k = pe.acc.chunkRegister().exponent() -
                          pe.abExp[l] + shift;
            if (k > thr) {
                // Terms stream MSB-first, so every remaining term of
                // this pair is guaranteed out-of-bounds too.
                pe.obMask |= bit;
                obPes_[l] |= 1ull << r;
                settleDirty_ = true;
                pe.stats.termsObSkipped +=
                    static_cast<uint64_t>(ts.size() - s.cursor);
            } else {
                consumed = false;
            }
        }
        if (!consumed)
            return;
        if (obPes_[l] == peAll_) {
            // The shared encoder drops the rest of the stream once
            // every PE in the column has flagged the lane.
            s.cursor = ts.size();
            liveMask_ &= ~bit;
            settleDirty_ = true;
            return;
        }
        ++s.cursor;
        for (uint64_t m = firedPes_[l]; m; m &= m - 1)
            pes_[static_cast<size_t>(std::countr_zero(m))].firedMask &=
                ~bit;
        firedPes_[l] = 0;
        if (s.cursor >= ts.size()) {
            liveMask_ &= ~bit;
            settleDirty_ = true;
            return;
        }
        const Term &t = ts[s.cursor];
        curShift_[l] = t.shift;
        curNegMask_ = (curNegMask_ & ~bit) | (t.neg ? bit : 0u);
    }
}

void
FPRakerColumn::settle(uint32_t mask)
{
    mask &= liveMask_;
    if (!mask)
        return;
    const int thr =
        cfg_.skipOutOfBounds ? cfg_.effectiveObThreshold() : INT_MAX;
    settleDirty_ = false;
    for (uint32_t m = mask; m; m &= m - 1)
        settleLane(std::countr_zero(m), thr);
    // Draining may have retired further lanes (obMask grew, liveMask
    // shrank); fold any PE that just lost its last live lane into the
    // summary mask so the next cycle skips it. Cursor-only advances
    // leave the retirement state untouched.
    if (retireSkip_ && settleDirty_ && liveMask_)
        refreshRetired();
}

bool
FPRakerColumn::busy() const
{
    return inSet_ && liveMask_ != 0;
}

void
FPRakerColumn::emitTrace(int r, int acc_exp, int base, uint32_t pend,
                         uint32_t fire, const int *k_of) const
{
    PeCycleTrace tr;
    tr.cycle = setCycles_;
    tr.pe = r;
    tr.base = base;
    tr.accExp = acc_exp;
    tr.action.assign(static_cast<size_t>(cfg_.lanes),
                     PeCycleTrace::LaneAction::Idle);
    tr.k.assign(static_cast<size_t>(cfg_.lanes), 0);
    for (uint32_t m = pend; m; m &= m - 1) {
        const int l = std::countr_zero(m);
        tr.action[static_cast<size_t>(l)] =
            (fire >> l) & 1u ? PeCycleTrace::LaneAction::Fired
                             : PeCycleTrace::LaneAction::ShiftStall;
        tr.k[static_cast<size_t>(l)] = k_of[l];
    }
    trace_(tr);
}

void
FPRakerColumn::stepCycle()
{
    if (!inSet_)
        return;

    // No settle on entry: beginSet leaves the set settled and every
    // cycle re-settles on exit, so out-of-bounds state is always
    // current here.
    if (!liveMask_)
        return;

    ++setCycles_;
    uint32_t firedUnion = 0;
    bool expMoved = false;

    // Cursor terms are column-shared and cached (curShift_ /
    // curNegMask_ track every cursor advance), so the per-cycle
    // snapshot is free.
    const int8_t *shiftOf = curShift_;
    const uint32_t negMask = curNegMask_;

    const bool tracing = static_cast<bool>(trace_);
    for (int r = 0; r < numPes_; ++r) {
        if ((retiredPeMask_ >> r) & 1u)
            continue; // Deferred no-term accounting in finishSet.
        PeState &pe = pes_[r];
        const int acc_exp = pe.acc.chunkRegister().exponent();
        const uint32_t pend = liveMask_ & ~pe.firedMask & ~pe.obMask;

        if (!pend) {
            // Nothing to do for this PE this cycle: every lane is either
            // exhausted, retired, or waiting for a sibling PE.
            pe.stats.laneNoTerm += static_cast<uint64_t>(activeLanes_);
            if (tracing)
                emitTrace(r, acc_exp, 0, 0, 0, nullptr);
            continue;
        }

        if (!tracing && (pend & (pend - 1)) == 0) {
            // Single pending lane (the common tail-cycle shape): it is
            // its own base shift, so it always fires, the adder tree
            // reduces to the one contribution, and the stats collapse
            // to constants — bit-identical to the general path below.
            const int l = std::countr_zero(pend);
            firedPes_[l] |= 1ull << r;
            pe.firedMask |= pend;
            const bool neg =
                (((pe.prodNegMask ^ negMask) >> l) & 1u) != 0;
            if (pe.bSig[l] != 0)
                pe.acc.chunkRegister().addValue(
                    neg, pe.abExp[l] - shiftOf[l] - 7, pe.bSig[l]);
            pe.stats.laneUseful += 1;
            pe.stats.termsProcessed += 1;
            pe.stats.laneNoTerm +=
                static_cast<uint64_t>(activeLanes_) - 1;
            firedUnion |= pend;
            if (pe.acc.chunkRegister().exponent() != acc_exp)
                expMoved = true;
            continue;
        }

        // Select the lanes that fire this cycle: those whose alignment
        // shift k lies within maxDelta of the base (minimum) shift.
        // Then reduce their contributions exactly (the adder tree) and
        // accumulate. The exact int64 tree covers spreads up to 48
        // bits — far beyond FPRaker's 3-position window; wider
        // configurations (the Bit-Pragmatic comparison PE has
        // unrestricted shifters) fall back to per-contribution
        // accumulation.
        int k_of[kMaxLanes];
        int base = INT_MAX;
        uint32_t fire = 0;
        int lsb_min = INT_MAX;
        int lsb_max = INT_MIN;
        for (uint32_t m = pend; m; m &= m - 1) {
            const int l = std::countr_zero(m);
            const int k = acc_exp - pe.abExp[l] + shiftOf[l];
            k_of[l] = k;
            if (k < base)
                base = k;
        }
        for (uint32_t m = pend; m; m &= m - 1) {
            const int l = std::countr_zero(m);
            if (k_of[l] - base > cfg_.maxDelta)
                continue;
            // lsb exponent of this contribution: (Ae+Be) - t - 7
            // (equivalently acc_exp - k - 7; the accumulator exponent
            // cancels, so the LSB is independent of alignment).
            const int lsb = pe.abExp[l] - shiftOf[l] - 7;
            fire |= 1u << l;
            lsb_min = std::min(lsb_min, lsb);
            lsb_max = std::max(lsb_max, lsb);
        }
        const bool exact_tree = lsb_max - lsb_min <= 48;

        int64_t sum = 0;
        for (uint32_t m = fire; m; m &= m - 1) {
            const int l = std::countr_zero(m);
            firedPes_[l] |= 1ull << r;
            const int lsb = pe.abExp[l] - shiftOf[l] - 7;
            const bool neg = (((pe.prodNegMask ^ negMask) >> l) & 1u) != 0;
            if (exact_tree) {
                const int64_t contrib =
                    static_cast<int64_t>(pe.bSig[l]) << (lsb - lsb_min);
                sum += neg ? -contrib : contrib;
            } else if (pe.bSig[l] != 0) {
                pe.acc.chunkRegister().addValue(
                    neg, lsb, static_cast<uint64_t>(pe.bSig[l]));
            }
        }
        pe.firedMask |= fire;

        const uint64_t fired_n =
            static_cast<uint64_t>(std::popcount(fire));
        const uint64_t pend_n =
            static_cast<uint64_t>(std::popcount(pend));
        pe.stats.laneUseful += fired_n;
        pe.stats.termsProcessed += fired_n;
        pe.stats.laneShiftRange += pend_n - fired_n;
        pe.stats.laneNoTerm +=
            static_cast<uint64_t>(activeLanes_) - pend_n;

        if (sum != 0) {
            pe.acc.chunkRegister().addValue(
                sum < 0, lsb_min,
                static_cast<uint64_t>(sum < 0 ? -sum : sum));
        }
        firedUnion |= fire;
        if (pe.acc.chunkRegister().exponent() != acc_exp)
            expMoved = true;

        if (tracing)
            emitTrace(r, acc_exp, base, pend, fire, k_of);
    }

    // Only fired lanes can advance, and out-of-bounds verdicts can only
    // change where an accumulator exponent moved — so the end-of-cycle
    // settle usually touches just the lanes that fired.
    settle(expMoved ? liveMask_ : firedUnion);
}

int
FPRakerColumn::finishSet()
{
    panic_if(!inSet_, "finishSet without beginSet");
    // (An entire set may be OB-retired in beginSet itself, in which
    // case the loop body never runs.)
    while (busy())
        stepCycle();

    // Settle the deferred accounting of skipped PEs: a retired PE would
    // have taken the no-term path on every remaining cycle.
    for (uint64_t m = retiredPeMask_; m; m &= m - 1) {
        const int r = std::countr_zero(m);
        pes_[static_cast<size_t>(r)].stats.laneNoTerm +=
            static_cast<uint64_t>(setCycles_ -
                                  retireCycle_[static_cast<size_t>(r)]) *
            static_cast<uint64_t>(activeLanes_);
    }
    retiredPeMask_ = 0;

    int cycles = setCycles_;
    const uint64_t floor_lanes =
        cycles < cfg_.exponentFloor
            ? static_cast<uint64_t>(cfg_.exponentFloor - cycles) *
                  activeLanes_
            : 0;
    if (cycles < cfg_.exponentFloor)
        cycles = cfg_.exponentFloor;
    for (int r = 0; r < numPes_; ++r) {
        pes_[r].stats.laneExponent += floor_lanes;
        pes_[r].stats.setCycles += static_cast<uint64_t>(cycles);
        pes_[r].acc.tickMacs(activeLanes_);
    }
    inSet_ = false;
    return cycles;
}

int
FPRakerColumn::dot(const BFloat16 *a, const BFloat16 *b, int b_stride,
                   size_t len)
{
    const int lanes = cfg_.lanes;
    // Sets per decode batch: the operand decode for a whole chunk runs
    // as one tight loop before any set simulates (amortizing the
    // decode across the row dimension), while the decoded rows stay
    // small enough to remain cache-resident.
    constexpr size_t kChunkSets = 32;
    const size_t rows = static_cast<size_t>(numPes_);
    decodeScratch_.resize(kChunkSets * rows);
    int active[kChunkSets];
    int cycles = 0;
    size_t i = 0;
    while (i < len) {
        const size_t chunk_begin = i;
        size_t nsets = 0;
        for (; nsets < kChunkSets && i < len; ++nsets) {
            // Only the final set of the dot can be ragged.
            const int act = static_cast<int>(std::min<size_t>(
                static_cast<size_t>(lanes), len - i));
            decodeBRows(b + i, b_stride, numPes_, act,
                        decodeScratch_.data() + nsets * rows);
            active[nsets] = act;
            i += static_cast<size_t>(act);
        }
        for (size_t s = 0; s < nsets; ++s) {
            beginSetDecoded(
                a + chunk_begin + s * static_cast<size_t>(lanes),
                decodeScratch_.data() + s * rows, active[s]);
            cycles += finishSet();
        }
    }
    return cycles;
}

void
FPRakerColumn::chargeInterPeStall(int cycles)
{
    panic_if(cycles < 0, "negative stall charge");
    for (int r = 0; r < numPes_; ++r) {
        pes_[r].stats.laneInterPe +=
            static_cast<uint64_t>(cycles) * cfg_.lanes;
        pes_[r].stats.setCycles += static_cast<uint64_t>(cycles);
    }
}

ChunkedAccumulator &
FPRakerColumn::accumulator(int pe)
{
    return pes_[static_cast<size_t>(pe)].acc;
}

const ChunkedAccumulator &
FPRakerColumn::accumulator(int pe) const
{
    return pes_[static_cast<size_t>(pe)].acc;
}

void
FPRakerColumn::resetAccumulators()
{
    for (auto &pe : pes_)
        pe.acc.reset();
}

const PeStats &
FPRakerColumn::stats(int pe) const
{
    return pes_[static_cast<size_t>(pe)].stats;
}

PeStats
FPRakerColumn::aggregateStats() const
{
    PeStats agg;
    for (const auto &pe : pes_)
        agg.merge(pe.stats);
    return agg;
}

void
FPRakerColumn::clearStats()
{
    for (auto &pe : pes_)
        pe.stats = PeStats{};
}

FPRakerPe::FPRakerPe(const PeConfig &cfg)
    : column_(cfg, 1)
{
}

int
FPRakerPe::processSet(const MacPair *pairs, int n)
{
    panic_if(n != column_.config().lanes,
             "set arity %d does not match PE lanes %d", n,
             column_.config().lanes);
    BFloat16 a[ExponentBlockResult::kMaxLanes];
    BFloat16 b[ExponentBlockResult::kMaxLanes];
    for (int l = 0; l < n; ++l) {
        a[l] = pairs[l].a;
        b[l] = pairs[l].b;
    }
    return column_.runSet(a, b, n);
}

int
FPRakerPe::dot(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    // Batched multi-set walk; ragged tails run as masked sets (padded
    // lanes would be architecturally absent, so they must not show up
    // in cycles or statistics). A single-PE column reads its B stream
    // at the same flat offsets as A, so the row stride is irrelevant.
    return column_.dot(a.data(), b.data(), 0, a.size());
}

} // namespace fpraker
