/**
 * @file
 * Types shared by the FPRaker and baseline processing-element models.
 */

#ifndef FPRAKER_PE_PE_COMMON_H
#define FPRAKER_PE_PE_COMMON_H

#include <cstdint>

#include "numeric/accumulator.h"
#include "numeric/bfloat16.h"
#include "numeric/term_encoder.h"

namespace fpraker {

/** One multiply-accumulate operand pair for a PE lane. */
struct MacPair
{
    BFloat16 a; //!< Serial operand (processed as a term stream).
    BFloat16 b; //!< Parallel operand (significand fed to the shifters).
};

/** Architectural parameters of an FPRaker PE. */
struct PeConfig
{
    /** Concurrent MAC lanes per PE (the paper's PE processes 8 pairs). */
    int lanes = 8;

    /**
     * Maximum difference between a lane's alignment shift and the
     * per-cycle base shift; lanes further away stall for a cycle. The
     * paper's preferred configuration limits this to 3, shrinking each
     * lane shifter to 3 positions (plus the shared base shifter).
     */
    int maxDelta = 3;

    /** Skip terms that fall outside the accumulator precision. */
    bool skipOutOfBounds = true;

    /**
     * Out-of-bounds threshold: a term is skippable when its alignment
     * shift k exceeds this. Negative selects the accumulator fraction
     * width (the paper's setting, per Sakr et al.); per-layer profiles
     * (Fig. 21) install smaller values.
     */
    int obThreshold = -1;

    /** Significand recoding for the serial operand. */
    TermEncoding encoding = TermEncoding::Canonical;

    /** Accumulator datapath parameters. */
    AccumulatorConfig acc;

    /**
     * Minimum cycles per set imposed by sharing one exponent block
     * between two PEs (paper section IV-B). Set to 1 to model a private
     * exponent block (ablation).
     */
    int exponentFloor = 2;

    /** Effective out-of-bounds threshold. */
    int
    effectiveObThreshold() const
    {
        return obThreshold >= 0 ? obThreshold : acc.fracBits;
    }

    bool operator==(const PeConfig &) const = default;
};

/**
 * Cycle and term accounting for one PE (aggregated across sets).
 *
 * Lane-cycle categories follow the paper's Fig. 15 taxonomy: every
 * lane-cycle of a busy PE is exactly one of useful / no-term /
 * shift-range; exponent covers the shared-exponent-block floor, and
 * inter-PE covers tile-level stalls waiting on operand broadcast.
 */
struct PeStats
{
    uint64_t laneUseful = 0;     //!< Lane fired a term this cycle.
    uint64_t laneNoTerm = 0;     //!< Lane had no term left (imbalance).
    uint64_t laneShiftRange = 0; //!< Term pending but outside the window.
    uint64_t laneExponent = 0;   //!< Exponent-block floor cycles.
    uint64_t laneInterPe = 0;    //!< Waiting on tile operand broadcast.

    uint64_t setCycles = 0; //!< Total cycles this PE spent on sets.
    uint64_t sets = 0;      //!< Operand sets processed.
    uint64_t macs = 0;      //!< MAC operations covered (lanes x sets).

    uint64_t termsProcessed = 0;   //!< Terms that consumed a cycle slot.
    uint64_t termsZeroSkipped = 0; //!< Empty term slots (zero bits/values).
    uint64_t termsObSkipped = 0;   //!< Non-zero terms skipped out-of-bounds.

    /** Total lane-cycles across all categories. */
    uint64_t
    laneCycles() const
    {
        return laneUseful + laneNoTerm + laneShiftRange + laneExponent +
               laneInterPe;
    }

    void
    merge(const PeStats &o)
    {
        laneUseful += o.laneUseful;
        laneNoTerm += o.laneNoTerm;
        laneShiftRange += o.laneShiftRange;
        laneExponent += o.laneExponent;
        laneInterPe += o.laneInterPe;
        setCycles += o.setCycles;
        sets += o.sets;
        macs += o.macs;
        termsProcessed += o.termsProcessed;
        termsZeroSkipped += o.termsZeroSkipped;
        termsObSkipped += o.termsObSkipped;
    }
};

} // namespace fpraker

#endif // FPRAKER_PE_PE_COMMON_H
