/**
 * @file
 * The floating-point conversions of Bit-Pragmatic and Laconic that the
 * paper evaluates (and rejects) in its introduction.
 *
 * Bit-Pragmatic processes one operand side term-serially — like
 * FPRaker — but as a straight fixed-point-to-floating-point port it
 * lacks every one of FPRaker's area levers: full-range alignment
 * shifters instead of the 3-position window + shared base shifter, a
 * private exponent block per PE, and no out-of-bounds skipping. The
 * paper measures the resulting PE at only 2.5x smaller than the
 * bit-parallel PE, which under iso-compute area buys too little
 * parallelism: on average 1.72x *slower* and 1.96x less energy
 * efficient than the optimized baseline (2.86x / 3.2x worst case).
 *
 * Laconic processes *both* operand sides term-serially, paying
 * terms(A) x terms(B) cycles per multiplication; its floating-point
 * conversion is "equally disappointing" (paper section VI).
 */

#ifndef FPRAKER_PE_ALT_PES_H
#define FPRAKER_PE_ALT_PES_H

#include <vector>

#include "pe/fpraker_pe.h"

namespace fpraker {

/**
 * PE configuration modelling the Bfloat16 Bit-Pragmatic PE: term-serial
 * A side with unrestricted shifters, private exponent block, and no
 * out-of-bounds skipping.
 */
PeConfig bitPragmaticFpConfig();

/** Timing/term statistics of a Laconic-FP PE. */
struct LaconicPeStats
{
    uint64_t cycles = 0;
    uint64_t sets = 0;
    uint64_t macs = 0;
    uint64_t termPairs = 0; //!< Single-bit products processed.

    void
    merge(const LaconicPeStats &o)
    {
        cycles += o.cycles;
        sets += o.sets;
        macs += o.macs;
        termPairs += o.termPairs;
    }
};

/**
 * Floating-point Laconic PE model: both significands are canonically
 * recoded and every term pair is processed as a one-bit product, one
 * pair per lane per cycle; a set completes when the slowest lane has
 * drained its terms(A) x terms(B) products.
 */
class LaconicFpPe
{
  public:
    explicit LaconicFpPe(const PeConfig &cfg = PeConfig{});

    /** Process one set of @p n = lanes pairs; returns cycles. */
    int processSet(const MacPair *pairs, int n);

    /** Accumulate a full dot product (lanes pairs per set). */
    int dot(const std::vector<BFloat16> &a, const std::vector<BFloat16> &b);

    float resultFloat() const { return acc_.total(); }
    ChunkedAccumulator &accumulator() { return acc_; }

    const LaconicPeStats &stats() const { return stats_; }
    void clearStats() { stats_ = LaconicPeStats{}; }
    void reset() { acc_.reset(); }

  private:
    PeConfig cfg_;
    TermEncoder encoder_;
    ChunkedAccumulator acc_;
    LaconicPeStats stats_;
};

} // namespace fpraker

#endif // FPRAKER_PE_ALT_PES_H
