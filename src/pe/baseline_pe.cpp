#include "pe/baseline_pe.h"

#include <climits>

#include "common/logging.h"
#include "pe/exponent_block.h"

namespace fpraker {

BaselinePe::BaselinePe(const PeConfig &cfg)
    : cfg_(cfg), acc_(cfg.acc)
{
    panic_if(cfg_.lanes < 1 || cfg_.lanes > ExponentBlockResult::kMaxLanes,
             "unsupported lane count %d", cfg_.lanes);
}

void
BaselinePe::decode(const BFloat16 *v, int n, DecodedOperands &out)
{
    panic_if(n < 1 || n > DecodedOperands::kMaxLanes,
             "decoding %d lanes", n);
    for (int l = 0; l < n; ++l) {
        const BFloat16 x = v[l];
        panic_if(!x.isFinite(), "non-finite PE operand (%04x)", x.bits());
        out.exp[l] = static_cast<int16_t>(x.unbiasedExponent());
        out.sig[l] = static_cast<int16_t>(x.significand());
        out.neg[l] = x.isNegative();
        out.zero[l] = x.isZero();
    }
}

int
BaselinePe::processSet(const MacPair *pairs, int n)
{
    panic_if(n != cfg_.lanes, "set arity %d does not match PE lanes %d", n,
             cfg_.lanes);
    BFloat16 a[DecodedOperands::kMaxLanes];
    BFloat16 b[DecodedOperands::kMaxLanes];
    for (int l = 0; l < n; ++l) {
        a[l] = pairs[l].a;
        b[l] = pairs[l].b;
    }
    DecodedOperands da, db;
    decode(a, n, da);
    decode(b, n, db);
    return processDecoded(da, db);
}

int
BaselinePe::processDecoded(const DecodedOperands &a,
                           const DecodedOperands &b)
{
    const int n = cfg_.lanes;

    // The exponent block: product exponents, the MAX tree (zero
    // operands carry exponent fields far below any normal value, so
    // inactive lanes are excluded), and the accumulator alignment.
    int abExp[DecodedOperands::kMaxLanes];
    bool active[DecodedOperands::kMaxLanes];
    int emax = acc_.chunkRegister().exponent();
    for (int l = 0; l < n; ++l) {
        active[l] = !a.zero[l] && !b.zero[l];
        abExp[l] = a.exp[l] + b.exp[l];
        if (active[l] && abExp[l] > emax)
            emax = abExp[l];
    }
    acc_.chunkRegister().alignTo(emax);

    // Align every product to the set's maximum exponent and reduce
    // exactly in a wide adder tree. Products that fall entirely below
    // the accumulator window cannot influence the rounded result beyond
    // the sticky position the hardware also discards.
    const int window = cfg_.acc.fracBits + 6;
    int64_t sum = 0;
    int lsb_min = INT_MAX;
    for (int l = 0; l < n; ++l) {
        if (!active[l])
            continue;
        if (abExp[l] < emax - window)
            continue;
        // Product lsb weighs 2^(Ae+Be-14); the in-window spread is
        // bounded so the exact reduction fits comfortably in 64 bits.
        int lsb = abExp[l] - 14;
        if (lsb < lsb_min)
            lsb_min = lsb;
    }
    for (int l = 0; l < n; ++l) {
        if (!active[l] || abExp[l] < emax - window)
            continue;
        int64_t prod = static_cast<int64_t>(a.sig[l]) *
                       static_cast<int64_t>(b.sig[l]);
        int64_t contrib = prod << (abExp[l] - 14 - lsb_min);
        sum += (a.neg[l] != b.neg[l]) ? -contrib : contrib;
    }
    if (sum != 0) {
        acc_.chunkRegister().addValue(
            sum < 0, lsb_min, static_cast<uint64_t>(sum < 0 ? -sum : sum));
    }
    acc_.tickMacs(n);

    stats_.cycles += 1;
    stats_.sets += 1;
    stats_.macs += static_cast<uint64_t>(n);
    for (int l = 0; l < n; ++l)
        if (!active[l])
            stats_.ineffectualMacs += 1;
    return 1;
}

int
BaselinePe::dot(const std::vector<BFloat16> &a,
                const std::vector<BFloat16> &b)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    int cycles = 0;
    for (size_t i = 0; i < a.size(); i += static_cast<size_t>(cfg_.lanes)) {
        MacPair pairs[ExponentBlockResult::kMaxLanes] = {};
        for (int l = 0; l < cfg_.lanes; ++l) {
            size_t idx = i + static_cast<size_t>(l);
            if (idx < a.size())
                pairs[l] = MacPair{a[idx], b[idx]};
        }
        cycles += processSet(pairs, cfg_.lanes);
    }
    return cycles;
}

} // namespace fpraker
