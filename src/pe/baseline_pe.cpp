#include "pe/baseline_pe.h"

#include <climits>

#include "common/logging.h"
#include "pe/exponent_block.h"

namespace fpraker {

BaselinePe::BaselinePe(const PeConfig &cfg)
    : cfg_(cfg), acc_(cfg.acc)
{
    panic_if(cfg_.lanes < 1 || cfg_.lanes > ExponentBlockResult::kMaxLanes,
             "unsupported lane count %d", cfg_.lanes);
}

int
BaselinePe::processSet(const MacPair *pairs, int n)
{
    panic_if(n != cfg_.lanes, "set arity %d does not match PE lanes %d", n,
             cfg_.lanes);

    ExponentBlockResult ebr = ExponentBlock::compute(
        pairs, n, acc_.chunkRegister().exponent());
    acc_.chunkRegister().alignTo(ebr.emax);

    // Align every product to the set's maximum exponent and reduce
    // exactly in a wide adder tree. Products that fall entirely below
    // the accumulator window cannot influence the rounded result beyond
    // the sticky position the hardware also discards.
    const int window = cfg_.acc.fracBits + 6;
    int64_t sum = 0;
    int lsb_min = INT_MAX;
    for (int l = 0; l < n; ++l) {
        if (!ebr.active[l])
            continue;
        if (ebr.abExp[l] < ebr.emax - window)
            continue;
        // Product lsb weighs 2^(Ae+Be-14); the in-window spread is
        // bounded so the exact reduction fits comfortably in 64 bits.
        int lsb = ebr.abExp[l] - 14;
        if (lsb < lsb_min)
            lsb_min = lsb;
    }
    for (int l = 0; l < n; ++l) {
        if (!ebr.active[l] || ebr.abExp[l] < ebr.emax - window)
            continue;
        int64_t prod = static_cast<int64_t>(pairs[l].a.significand()) *
                       static_cast<int64_t>(pairs[l].b.significand());
        int64_t contrib = prod << (ebr.abExp[l] - 14 - lsb_min);
        sum += ebr.prodNeg[l] ? -contrib : contrib;
    }
    if (sum != 0) {
        acc_.chunkRegister().addValue(
            sum < 0, lsb_min, static_cast<uint64_t>(sum < 0 ? -sum : sum));
    }
    acc_.tickMacs(n);

    stats_.cycles += 1;
    stats_.sets += 1;
    stats_.macs += static_cast<uint64_t>(n);
    for (int l = 0; l < n; ++l)
        if (!ebr.active[l])
            stats_.ineffectualMacs += 1;
    return 1;
}

int
BaselinePe::dot(const std::vector<BFloat16> &a,
                const std::vector<BFloat16> &b)
{
    panic_if(a.size() != b.size(), "dot of mismatched lengths %zu vs %zu",
             a.size(), b.size());
    int cycles = 0;
    for (size_t i = 0; i < a.size(); i += static_cast<size_t>(cfg_.lanes)) {
        MacPair pairs[ExponentBlockResult::kMaxLanes] = {};
        for (int l = 0; l < cfg_.lanes; ++l) {
            size_t idx = i + static_cast<size_t>(l);
            if (idx < a.size())
                pairs[l] = MacPair{a[idx], b[idx]};
        }
        cycles += processSet(pairs, cfg_.lanes);
    }
    return cycles;
}

} // namespace fpraker
