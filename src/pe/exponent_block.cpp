#include "pe/exponent_block.h"

#include "common/logging.h"

namespace fpraker {

ExponentBlockResult
ExponentBlock::compute(const MacPair *pairs, int n, int acc_exp)
{
    panic_if(n < 1 || n > ExponentBlockResult::kMaxLanes,
             "exponent block fed %d lanes", n);
    ExponentBlockResult r;
    r.emax = acc_exp;
    for (int i = 0; i < n; ++i) {
        const MacPair &p = pairs[i];
        panic_if(!p.a.isFinite() || !p.b.isFinite(),
                 "non-finite PE operand (a=%04x b=%04x)", p.a.bits(),
                 p.b.bits());
        r.active[i] = !p.a.isZero() && !p.b.isZero();
        r.prodNeg[i] = p.a.isNegative() != p.b.isNegative();
        // Zero operands carry an all-zero exponent field; their product
        // exponents are far below any normal value, so the MAX tree
        // ignores them and the out-of-bounds check retires the lane
        // immediately — value sparsity falls out of the OB mechanism.
        r.abExp[i] = p.a.unbiasedExponent() + p.b.unbiasedExponent();
        if (r.active[i] && r.abExp[i] > r.emax)
            r.emax = r.abExp[i];
    }
    return r;
}

} // namespace fpraker
