/**
 * @file
 * The PE's exponent block (paper Fig. 3, block 1).
 *
 * Once per operand set, the exponent block adds the A and B exponents in
 * pairs to form the product exponents, finds the maximum across them and
 * the accumulator exponent (the MAX comparator tree), and derives the
 * per-lane alignment deltas. In the tile, one exponent block is
 * time-multiplexed between two PEs (paper section IV-B), which makes a
 * set cost at least two cycles; that floor is modeled by
 * PeConfig::exponentFloor.
 */

#ifndef FPRAKER_PE_EXPONENT_BLOCK_H
#define FPRAKER_PE_EXPONENT_BLOCK_H

#include "pe/pe_common.h"

namespace fpraker {

/** Per-set output of the exponent block for one PE. */
struct ExponentBlockResult
{
    static constexpr int kMaxLanes = 16;

    /** max(product exponents, accumulator exponent). */
    int emax = ExtendedAccumulator::kMinExp;

    /** Unbiased product exponent per lane (Ae + Be). */
    int abExp[kMaxLanes] = {};

    /** Product sign per lane (true = negative). */
    bool prodNeg[kMaxLanes] = {};

    /** Lane carries a non-zero product (both operands non-zero). */
    bool active[kMaxLanes] = {};
};

/**
 * Functional model of the exponent block. Stateless; occupancy/sharing
 * costs are accounted by the PE/tile timing model.
 */
class ExponentBlock
{
  public:
    /**
     * Evaluate one operand set.
     *
     * @param pairs    the lane operand pairs
     * @param n        number of lanes in use (<= kMaxLanes)
     * @param acc_exp  current accumulator exponent register
     */
    static ExponentBlockResult compute(const MacPair *pairs, int n,
                                       int acc_exp);
};

} // namespace fpraker

#endif // FPRAKER_PE_EXPONENT_BLOCK_H
